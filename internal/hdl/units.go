package hdl

import "fmt"

// Generators for the HDC datapath units of the paper's FPGA design.

// XorVector builds the D-wide binding/multiplication unit: out = a ^ b.
// With the basis hypervector wired to one port, this is the stochastic
// multiplier (V_ab = V1 ^ Va ^ Vb reduces to two such stages).
func XorVector(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_xor_d%d", d))
	a := m.Input("a", d)
	b := m.Input("b", d)
	out := make([]Net, d)
	for i := 0; i < d; i++ {
		out[i] = m.Xor(a[i], b[i])
	}
	m.Output("y", out)
	return m
}

// SelectVector builds the weighted-average unit: out[i] = mask[i] ? a : b.
// Driven by a Bernoulli(p) mask from the LFSR farm it computes
// p*a (+) (1-p)*b.
func SelectVector(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_select_d%d", d))
	mask := m.Input("mask", d)
	a := m.Input("a", d)
	b := m.Input("b", d)
	out := make([]Net, d)
	for i := 0; i < d; i++ {
		out[i] = m.Mux(mask[i], a[i], b[i])
	}
	m.Output("y", out)
	return m
}

// addBit appends a full adder returning (sum, carry).
func addBit(m *Module, a, b, cin Net) (sum, cout Net) {
	axb := m.Xor(a, b)
	sum = m.Xor(axb, cin)
	cout = m.Or(m.And(a, b), m.And(axb, cin))
	return
}

// rippleAdd adds two equal-width buses, returning width+1 bits.
func rippleAdd(m *Module, a, b []Net) []Net {
	if len(a) != len(b) {
		panic("hdl: rippleAdd width mismatch")
	}
	out := make([]Net, 0, len(a)+1)
	carry := m.Const(false)
	for i := range a {
		var s Net
		s, carry = addBit(m, a[i], b[i], carry)
		out = append(out, s)
	}
	return append(out, carry)
}

// popcountNets reduces bits to a binary count bus with a balanced adder
// tree, the LUT structure the popcount units synthesize to.
func popcountNets(m *Module, bits []Net) []Net {
	if len(bits) == 0 {
		return []Net{m.Const(false)}
	}
	// Start with 1-bit buses, then pairwise add.
	buses := make([][]Net, len(bits))
	for i, b := range bits {
		buses[i] = []Net{b}
	}
	for len(buses) > 1 {
		var next [][]Net
		for i := 0; i+1 < len(buses); i += 2 {
			a, b := buses[i], buses[i+1]
			// Pad to equal width.
			for len(a) < len(b) {
				a = append(a, m.Const(false))
			}
			for len(b) < len(a) {
				b = append(b, m.Const(false))
			}
			next = append(next, rippleAdd(m, a, b))
		}
		if len(buses)%2 == 1 {
			next = append(next, buses[len(buses)-1])
		}
		buses = next
	}
	return buses[0]
}

// countWidth returns the bits needed to count up to d.
func countWidth(d int) int {
	w := 1
	for (1 << w) < d+1 {
		w++
	}
	return w
}

// Popcount builds the D-bit population counter used by the similarity
// units.
func Popcount(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_popcount_d%d", d))
	in := m.Input("x", d)
	count := popcountNets(m, in)
	w := countWidth(d)
	for len(count) < w {
		count = append(count, m.Const(false))
	}
	m.Output("count", count[:w])
	return m
}

// HammingDistance builds the similarity kernel: popcount(a ^ b).
func HammingDistance(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_hamming_d%d", d))
	a := m.Input("a", d)
	b := m.Input("b", d)
	diff := make([]Net, d)
	for i := 0; i < d; i++ {
		diff[i] = m.Xor(a[i], b[i])
	}
	count := popcountNets(m, diff)
	w := countWidth(d)
	for len(count) < w {
		count = append(count, m.Const(false))
	}
	m.Output("dist", count[:w])
	return m
}

// lessThan builds an unsigned comparator: out = (a < b).
func lessThan(m *Module, a, b []Net) Net {
	if len(a) != len(b) {
		panic("hdl: comparator width mismatch")
	}
	// From MSB down: lt = ~a&b | (a==b)&lt_lower.
	lt := m.Const(false)
	for i := 0; i < len(a); i++ { // LSB to MSB, rebuilding each level
		bitLT := m.And(m.Not(a[i]), b[i])
		eq := m.Not(m.Xor(a[i], b[i]))
		lt = m.Or(bitLT, m.And(eq, lt))
	}
	return lt
}

// NearestClass builds the associative-search decision for two classes:
// given the query's Hamming distances to both class hypervectors, output
// sel = 1 when class1 is nearer. Wider class counts compose this unit in a
// tournament tree (as the experiments' hwsim prices it).
func NearestClass(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_nearest2_d%d", d))
	a := m.Input("a", d)
	b0 := m.Input("class0", d)
	b1 := m.Input("class1", d)
	diff0 := make([]Net, d)
	diff1 := make([]Net, d)
	for i := 0; i < d; i++ {
		diff0[i] = m.Xor(a[i], b0[i])
		diff1[i] = m.Xor(a[i], b1[i])
	}
	c0 := popcountNets(m, diff0)
	c1 := popcountNets(m, diff1)
	for len(c0) < len(c1) {
		c0 = append(c0, m.Const(false))
	}
	for len(c1) < len(c0) {
		c1 = append(c1, m.Const(false))
	}
	m.Output("sel", []Net{lessThan(m, c1, c0)})
	return m
}

// muxBus selects between two equal-width buses.
func muxBus(m *Module, sel Net, a, b []Net) []Net {
	if len(a) != len(b) {
		panic("hdl: muxBus width mismatch")
	}
	out := make([]Net, len(a))
	for i := range a {
		out[i] = m.Mux(sel, a[i], b[i])
	}
	return out
}

// indexBits returns the bit width needed to index k items.
func indexBits(k int) int {
	w := 1
	for (1 << w) < k {
		w++
	}
	return w
}

// constBus builds a constant bus holding value v.
func constBus(m *Module, v, width int) []Net {
	out := make([]Net, width)
	for i := range out {
		out[i] = m.Const(v>>uint(i)&1 == 1)
	}
	return out
}

// AssocSearch builds the complete K-class associative inference back-end:
// Hamming distance of the query against every class hypervector, reduced
// by a comparator tournament to the index of the nearest class (ties go to
// the lower index). Inputs: "q" and "class0".."class{K-1}", each d bits;
// output: "winner", ceil(log2 K) bits. This is the module the paper's
// similarity-search stage synthesizes to.
func AssocSearch(d, k int) *Module {
	if k < 2 {
		panic("hdl: AssocSearch needs at least two classes")
	}
	m := NewModule(fmt.Sprintf("hd_assoc_d%d_k%d", d, k))
	q := m.Input("q", d)
	ib := indexBits(k)
	type entry struct {
		dist []Net
		idx  []Net
	}
	entries := make([]entry, k)
	for c := 0; c < k; c++ {
		cls := m.Input(fmt.Sprintf("class%d", c), d)
		diff := make([]Net, d)
		for i := 0; i < d; i++ {
			diff[i] = m.Xor(q[i], cls[i])
		}
		entries[c] = entry{dist: popcountNets(m, diff), idx: constBus(m, c, ib)}
	}
	// Pad distances to a common width.
	maxW := 0
	for _, e := range entries {
		if len(e.dist) > maxW {
			maxW = len(e.dist)
		}
	}
	for c := range entries {
		for len(entries[c].dist) < maxW {
			entries[c].dist = append(entries[c].dist, m.Const(false))
		}
	}
	// Tournament reduction; on strict less the challenger wins, so the
	// earliest minimum survives ties.
	for len(entries) > 1 {
		var next []entry
		for i := 0; i+1 < len(entries); i += 2 {
			a, b := entries[i], entries[i+1]
			bWins := lessThan(m, b.dist, a.dist)
			next = append(next, entry{
				dist: muxBus(m, bWins, b.dist, a.dist),
				idx:  muxBus(m, bWins, b.idx, a.idx),
			})
		}
		if len(entries)%2 == 1 {
			next = append(next, entries[len(entries)-1])
		}
		entries = next
	}
	m.Output("winner", entries[0].idx)
	return m
}

// LFSR builds a Fibonacci linear-feedback shift register of the given
// width with the supplied tap positions (bit indices into the state). It
// clocks on every Step and outputs the full state as the random word —
// the building block of the Bernoulli mask farms.
func LFSR(width int, taps []int) *Module {
	if width < 2 {
		panic("hdl: LFSR width must be >= 2")
	}
	m := NewModule(fmt.Sprintf("hd_lfsr_w%d", width))
	state := make([]Net, width)
	for i := range state {
		// Non-zero initial state: seed with alternating bits.
		state[i] = m.Reg(i%2 == 0)
	}
	// Feedback = XOR of taps.
	if len(taps) == 0 {
		taps = []int{0, width - 1}
	}
	fb := state[taps[0]]
	for _, t := range taps[1:] {
		if t < 0 || t >= width {
			panic("hdl: LFSR tap out of range")
		}
		fb = m.Xor(fb, state[t])
	}
	// Shift: state[i] <= state[i-1], state[0] <= feedback.
	m.Wire(state[0], fb)
	for i := 1; i < width; i++ {
		m.Wire(state[i], state[i-1])
	}
	m.Output("rand", state)
	return m
}

// BernoulliMask builds one mask-generation lane: an LFSR word compared
// against a programmable threshold gives a Bernoulli(threshold/2^width)
// bit per cycle — the hardware realisation of stoch's mask generator.
func BernoulliMask(width int, taps []int) *Module {
	m := NewModule(fmt.Sprintf("hd_bernoulli_w%d", width))
	thresh := m.Input("thresh", width)
	state := make([]Net, width)
	for i := range state {
		state[i] = m.Reg(i%2 == 0)
	}
	if len(taps) == 0 {
		taps = []int{0, width - 1}
	}
	fb := state[taps[0]]
	for _, t := range taps[1:] {
		fb = m.Xor(fb, state[t])
	}
	m.Wire(state[0], fb)
	for i := 1; i < width; i++ {
		m.Wire(state[i], state[i-1])
	}
	m.Output("bit", []Net{lessThan(m, state, thresh)})
	m.Output("rand", state)
	return m
}

// PipelinedHamming builds a two-stage registered similarity unit: stage 1
// latches the XOR difference, stage 2 exposes the popcount of the latched
// word. Results appear one clock after the inputs — the pipelining style
// the deep FPGA datapath uses between every operator.
func PipelinedHamming(d int) *Module {
	m := NewModule(fmt.Sprintf("hd_hamming_pipe_d%d", d))
	a := m.Input("a", d)
	b := m.Input("b", d)
	stage := make([]Net, d)
	for i := 0; i < d; i++ {
		r := m.Reg(false)
		m.Wire(r, m.Xor(a[i], b[i]))
		stage[i] = r
	}
	count := popcountNets(m, stage)
	w := countWidth(d)
	for len(count) < w {
		count = append(count, m.Const(false))
	}
	m.Output("dist", count[:w])
	return m
}
