package svm

import (
	"testing"

	"hdface/internal/hv"
)

func blobs(dim, k, perClass int, spread float64, seed uint64) (xs [][]float64, ys []int) {
	r := hv.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = r.NormFloat64() * 3
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perClass; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = centers[c][j] + r.NormFloat64()*spread
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := Train([][]float64{{1}}, []int{0}, 1, Config{}); err == nil {
		t.Fatal("accepted k=1")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []int{0, 1}, 2, Config{}); err == nil {
		t.Fatal("accepted ragged features")
	}
	if _, err := Train([][]float64{{1}}, []int{5}, 2, Config{}); err == nil {
		t.Fatal("accepted out-of-range label")
	}
}

func TestLearnsSeparableBlobs(t *testing.T) {
	xs, ys := blobs(8, 3, 40, 0.5, 1)
	m, err := Train(xs, ys, 3, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("train accuracy %v", acc)
	}
	tx, ty := blobs(8, 3, 10, 0.5, 1)
	if acc := m.Accuracy(tx, ty); acc < 0.9 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestBinaryProblem(t *testing.T) {
	xs, ys := blobs(4, 2, 50, 0.7, 3)
	m, err := Train(xs, ys, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("binary accuracy %v", acc)
	}
}

func TestDecisionShapeAndPanic(t *testing.T) {
	xs, ys := blobs(4, 2, 10, 0.5, 4)
	m, _ := Train(xs, ys, 2, Config{})
	if d := m.Decision(xs[0]); len(d) != 2 {
		t.Fatalf("decision length %d", len(d))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong length")
		}
	}()
	m.Decision([]float64{1})
}

func TestDeterministic(t *testing.T) {
	xs, ys := blobs(4, 2, 20, 0.5, 5)
	a, _ := Train(xs, ys, 2, Config{Seed: 7})
	b, _ := Train(xs, ys, 2, Config{Seed: 7})
	for c := range a.W {
		for j := range a.W[c] {
			if a.W[c][j] != b.W[c][j] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestNormBounded(t *testing.T) {
	// Pegasos keeps ||w|| <= 1/sqrt(lambda).
	xs, ys := blobs(6, 2, 30, 1.0, 6)
	lambda := 1e-3
	m, _ := Train(xs, ys, 2, Config{Lambda: lambda, Epochs: 30})
	bound := 1.05 / 0.0316227766 // 1/sqrt(1e-3) with 5% slack
	for c := 0; c < 2; c++ {
		if m.Norm(c) > bound {
			t.Fatalf("class %d norm %v exceeds Pegasos bound", c, m.Norm(c))
		}
	}
}

func TestMACsCounted(t *testing.T) {
	xs, ys := blobs(4, 2, 10, 0.5, 8)
	m, _ := Train(xs, ys, 2, Config{Epochs: 2})
	if m.MACs == 0 {
		t.Fatal("MACs not counted")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &Model{In: 2, K: 2, W: [][]float64{{0, 0}, {0, 0}}, B: []float64{0, 0}}
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy != 0")
	}
}

func BenchmarkTrain(b *testing.B) {
	xs, ys := blobs(324, 2, 50, 0.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(xs, ys, 2, Config{Epochs: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
