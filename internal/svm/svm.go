// Package svm implements the paper's SVM baseline: a linear multi-class
// support vector machine trained with the Pegasos stochastic sub-gradient
// solver in a one-vs-rest arrangement over HOG features.
package svm

import (
	"errors"
	"fmt"
	"math"

	"hdface/internal/hv"
)

// Config holds the solver hyperparameters.
type Config struct {
	Lambda float64 // regularisation (default 1e-4)
	Epochs int     // passes over the data (default 20)
	Seed   uint64
}

func (c Config) withDefaults() Config {
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	return c
}

// Model is a trained one-vs-rest linear SVM.
type Model struct {
	In, K int
	W     [][]float64 // K x In
	B     []float64
	// MACs counts multiply-accumulate work for the hardware model.
	MACs int64
}

// Train fits the SVM; labels must lie in [0, k).
func Train(xs [][]float64, ys []int, k int, cfg Config) (*Model, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("svm: features and labels must be non-empty and aligned")
	}
	if k < 2 {
		return nil, errors.New("svm: need at least two classes")
	}
	cfg = cfg.withDefaults()
	in := len(xs[0])
	for i, x := range xs {
		if len(x) != in {
			return nil, fmt.Errorf("svm: sample %d has %d features, want %d", i, len(x), in)
		}
		if ys[i] < 0 || ys[i] >= k {
			return nil, fmt.Errorf("svm: label %d out of range", ys[i])
		}
	}
	m := &Model{In: in, K: k, W: make([][]float64, k), B: make([]float64, k)}
	for c := range m.W {
		m.W[c] = make([]float64, in)
	}
	r := hv.NewRNG(cfg.Seed ^ 0x5f3759df)
	t := 1
	for e := 0; e < cfg.Epochs; e++ {
		perm := r.Perm(len(xs))
		for _, i := range perm {
			x := xs[i]
			eta := 1 / (cfg.Lambda * float64(t))
			t++
			for c := 0; c < k; c++ {
				y := -1.0
				if ys[i] == c {
					y = 1
				}
				w := m.W[c]
				var margin float64
				for j, xv := range x {
					margin += w[j] * xv
				}
				margin = y * (margin + m.B[c])
				m.MACs += int64(in)
				// Pegasos update: shrink always, push on margin violation.
				shrink := 1 - eta*cfg.Lambda
				for j := range w {
					w[j] *= shrink
				}
				if margin < 1 {
					coef := eta * y
					for j, xv := range x {
						w[j] += coef * xv
					}
					m.B[c] += coef
					m.MACs += int64(in)
				}
				// Pegasos projection step: keep ||w|| <= 1/sqrt(lambda).
				var norm float64
				for _, wv := range w {
					norm += wv * wv
				}
				if bound := 1 / math.Sqrt(cfg.Lambda); norm > bound*bound {
					s := bound / math.Sqrt(norm)
					for j := range w {
						w[j] *= s
					}
				}
			}
		}
	}
	return m, nil
}

// Decision returns the raw per-class scores for x.
func (m *Model) Decision(x []float64) []float64 {
	if len(x) != m.In {
		panic(fmt.Sprintf("svm: got %d features, want %d", len(x), m.In))
	}
	out := make([]float64, m.K)
	for c := 0; c < m.K; c++ {
		s := m.B[c]
		for j, xv := range x {
			s += m.W[c][j] * xv
		}
		out[c] = s
	}
	return out
}

// Predict returns the highest-scoring class.
func (m *Model) Predict(x []float64) int {
	d := m.Decision(x)
	best := 0
	for c, s := range d {
		if s > d[best] {
			best = c
		}
	}
	return best
}

// Accuracy evaluates the model.
func (m *Model) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Norm returns the L2 norm of class c's weight vector (diagnostic: Pegasos
// bounds it by 1/sqrt(lambda)).
func (m *Model) Norm(c int) float64 {
	var s float64
	for _, w := range m.W[c] {
		s += w * w
	}
	return math.Sqrt(s)
}
