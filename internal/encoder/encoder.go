// Package encoder maps original-space (floating point) feature vectors
// into binary hypervectors — the front-end HDFace configuration (1) uses
// when HOG runs on the original data representation and a separate HDC
// encoding step is therefore required. Two standard encoders are provided:
// the ID-level scheme and a nonlinear random-projection scheme.
package encoder

import (
	"fmt"
	"math"
	"sync/atomic"

	"hdface/internal/hv"
)

// Encoder maps a fixed-length float feature vector to a hypervector.
type Encoder interface {
	// Encode returns the hypervector of features. Implementations panic if
	// len(features) differs from Features().
	Encode(features []float64) *hv.Vector
	// D returns the output dimensionality.
	D() int
	// Features returns the expected input length.
	Features() int
}

// Stats counts encoding work for the hardware model.
type Stats struct {
	Encodes int64
	MACs    int64 // multiply-accumulate ops (projection encoder)
	BitOps  int64 // word-level bit operations (ID-level encoder)
}

// IDLevel implements the classic ID-level HDC encoder: every feature index
// gets a random ID hypervector, every quantisation level gets a level
// hypervector built by progressively flipping bits so nearby levels stay
// similar, and the encoding is the majority bundle of ID XOR level pairs.
type IDLevel struct {
	d, nFeat, nLevels int
	lo, hi            float64
	ids               []*hv.Vector
	levels            []*hv.Vector
	tie               *hv.Vector
	Stats             Stats
}

// NewIDLevel builds an ID-level encoder for nFeat features quantised into
// nLevels levels over [lo, hi].
func NewIDLevel(d, nFeat, nLevels int, lo, hi float64, seed uint64) *IDLevel {
	if d <= 0 || nFeat <= 0 || nLevels < 2 || hi <= lo {
		panic("encoder: invalid IDLevel parameters")
	}
	r := hv.NewRNG(seed)
	e := &IDLevel{d: d, nFeat: nFeat, nLevels: nLevels, lo: lo, hi: hi}
	e.ids = make([]*hv.Vector, nFeat)
	for i := range e.ids {
		e.ids[i] = hv.NewRand(r, d)
	}
	// Level chain: start random; each next level flips a disjoint random
	// slice of ~d/(2*(nLevels-1)) positions, so level 0 and level max are
	// nearly orthogonal and adjacent levels nearly identical.
	e.levels = make([]*hv.Vector, nLevels)
	e.levels[0] = hv.NewRand(r, d)
	perm := r.Perm(d)
	flipPer := d / (2 * (nLevels - 1))
	pos := 0
	for l := 1; l < nLevels; l++ {
		v := e.levels[l-1].Clone()
		for i := 0; i < flipPer && pos < len(perm); i++ {
			p := perm[pos]
			pos++
			v.SetBit(p, -v.Bit(p))
		}
		e.levels[l] = v
	}
	e.tie = hv.NewRand(r, d)
	return e
}

// D returns the output dimensionality.
func (e *IDLevel) D() int { return e.d }

// Features returns the expected feature count.
func (e *IDLevel) Features() int { return e.nFeat }

// Levels returns the quantisation level count.
func (e *IDLevel) Levels() int { return e.nLevels }

// quantise maps a feature value to its level index.
func (e *IDLevel) quantise(v float64) int {
	t := (v - e.lo) / (e.hi - e.lo)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	l := int(t * float64(e.nLevels-1))
	if l >= e.nLevels {
		l = e.nLevels - 1
	}
	return l
}

// Encode bundles ID_i XOR Level(x_i) over all features.
func (e *IDLevel) Encode(features []float64) *hv.Vector {
	if len(features) != e.nFeat {
		panic(fmt.Sprintf("encoder: got %d features, want %d", len(features), e.nFeat))
	}
	e.Stats.Encodes++
	acc := hv.NewAccumulator(e.d)
	bound := hv.New(e.d)
	words := int64((e.d + 63) / 64)
	for i, x := range features {
		bound.Xor(e.ids[i], e.levels[e.quantise(x)])
		acc.Add(bound)
		e.Stats.BitOps += words
	}
	out, _ := acc.Sign(e.tie)
	return out
}

// Projection implements a nonlinear random-projection encoder: output bit i
// is the sign of a random Gaussian projection of the features plus a random
// phase, the "non-linear encoder" configuration of the paper's Figure 4.
type Projection struct {
	d, nFeat int
	w        []float32 // d rows of nFeat weights
	b        []float32
	Stats    Stats
}

// NewProjection builds a projection encoder with N(0, 1) weights and
// uniform biases.
func NewProjection(d, nFeat int, seed uint64) *Projection {
	if d <= 0 || nFeat <= 0 {
		panic("encoder: invalid Projection parameters")
	}
	r := hv.NewRNG(seed)
	e := &Projection{d: d, nFeat: nFeat}
	e.w = make([]float32, d*nFeat)
	for i := range e.w {
		e.w[i] = float32(r.NormFloat64())
	}
	e.b = make([]float32, d)
	for i := range e.b {
		e.b[i] = float32(r.NormFloat64() * 0.1)
	}
	return e
}

// D returns the output dimensionality.
func (e *Projection) D() int { return e.d }

// Features returns the expected feature count.
func (e *Projection) Features() int { return e.nFeat }

// Encode computes sign(Wx + b) as a binary hypervector.
func (e *Projection) Encode(features []float64) *hv.Vector {
	if len(features) != e.nFeat {
		panic(fmt.Sprintf("encoder: got %d features, want %d", len(features), e.nFeat))
	}
	// One Projection is shared across feature-extraction workers (weights
	// and biases are read-only after construction), so the counters must be
	// atomic.
	atomic.AddInt64(&e.Stats.Encodes, 1)
	atomic.AddInt64(&e.Stats.MACs, int64(e.d)*int64(e.nFeat))
	out := hv.New(e.d)
	for i := 0; i < e.d; i++ {
		row := e.w[i*e.nFeat : (i+1)*e.nFeat]
		s := float64(e.b[i])
		for j, x := range features {
			s += float64(row[j]) * x
		}
		if s > 0 {
			out.SetBit(i, 1)
		}
	}
	return out
}

// Similarity preservation diagnostic: expected hypervector cosine for two
// inputs with angle theta between them under the projection encoder is
// 1 - 2*theta/pi (the sign-random-projection kernel). Exported for tests
// and documentation.
func ProjectionKernel(cosTheta float64) float64 {
	if cosTheta > 1 {
		cosTheta = 1
	} else if cosTheta < -1 {
		cosTheta = -1
	}
	return 1 - 2*math.Acos(cosTheta)/math.Pi
}
