package encoder

import (
	"math"
	"testing"

	"hdface/internal/hv"
)

func TestIDLevelBasics(t *testing.T) {
	e := NewIDLevel(2048, 10, 16, 0, 1, 1)
	if e.D() != 2048 || e.Features() != 10 || e.Levels() != 16 {
		t.Fatalf("accessors wrong")
	}
	v := e.Encode(make([]float64, 10))
	if v.D() != 2048 {
		t.Fatal("output dimension wrong")
	}
}

func TestIDLevelPanicsOnBadInput(t *testing.T) {
	e := NewIDLevel(256, 4, 8, 0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong feature count")
		}
	}()
	e.Encode(make([]float64, 3))
}

func TestIDLevelConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewIDLevel(0, 4, 8, 0, 1, 1) },
		func() { NewIDLevel(256, 0, 8, 0, 1, 1) },
		func() { NewIDLevel(256, 4, 1, 0, 1, 1) },
		func() { NewIDLevel(256, 4, 8, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestIDLevelDeterministic(t *testing.T) {
	a := NewIDLevel(1024, 8, 8, 0, 1, 7)
	b := NewIDLevel(1024, 8, 8, 0, 1, 7)
	x := []float64{0.1, 0.5, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4}
	if !a.Encode(x).Equal(b.Encode(x)) {
		t.Fatal("same seed produced different encodings")
	}
}

func TestIDLevelQuantise(t *testing.T) {
	e := NewIDLevel(256, 2, 4, 0, 1, 1)
	cases := map[float64]int{-1: 0, 0: 0, 0.2: 0, 0.4: 1, 0.7: 2, 0.99: 2, 1: 3, 5: 3}
	for v, want := range cases {
		if got := e.quantise(v); got != want {
			t.Errorf("quantise(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestIDLevelChainLocality(t *testing.T) {
	// Adjacent levels nearly identical, extreme levels nearly orthogonal.
	e := NewIDLevel(8192, 2, 32, 0, 1, 3)
	adj := e.levels[0].Cos(e.levels[1])
	far := e.levels[0].Cos(e.levels[31])
	if adj < 0.9 {
		t.Fatalf("adjacent levels cos %v, want > 0.9", adj)
	}
	if math.Abs(far) > 0.12 {
		t.Fatalf("extreme levels cos %v, want ~0", far)
	}
	// Monotone decay along the chain.
	prev := 1.0
	for l := 1; l < 32; l += 6 {
		cos := e.levels[0].Cos(e.levels[l])
		if cos > prev+0.02 {
			t.Fatalf("level similarity not decaying at %d: %v > %v", l, cos, prev)
		}
		prev = cos
	}
}

func TestIDLevelSimilarInputsSimilarCodes(t *testing.T) {
	e := NewIDLevel(4096, 16, 32, 0, 1, 5)
	base := make([]float64, 16)
	for i := range base {
		base[i] = float64(i) / 16
	}
	near := make([]float64, 16)
	copy(near, base)
	near[0] += 0.03 // one feature, one level step at most
	far := make([]float64, 16)
	for i := range far {
		far[i] = 1 - base[i]
	}
	vb, vn, vf := e.Encode(base), e.Encode(near), e.Encode(far)
	if vb.Cos(vn) <= vb.Cos(vf) {
		t.Fatalf("locality broken: near %v, far %v", vb.Cos(vn), vb.Cos(vf))
	}
	if vb.Cos(vn) < 0.5 {
		t.Fatalf("near input similarity too low: %v", vb.Cos(vn))
	}
}

func TestIDLevelStats(t *testing.T) {
	e := NewIDLevel(1024, 4, 8, 0, 1, 1)
	e.Encode(make([]float64, 4))
	if e.Stats.Encodes != 1 || e.Stats.BitOps == 0 {
		t.Fatalf("stats not counted: %+v", e.Stats)
	}
}

func TestProjectionBasics(t *testing.T) {
	e := NewProjection(1024, 8, 1)
	if e.D() != 1024 || e.Features() != 8 {
		t.Fatal("accessors wrong")
	}
	v := e.Encode(make([]float64, 8))
	if v.D() != 1024 {
		t.Fatal("output dimension wrong")
	}
	if e.Stats.MACs != 1024*8 {
		t.Fatalf("MACs = %d", e.Stats.MACs)
	}
}

func TestProjectionPanics(t *testing.T) {
	e := NewProjection(256, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong feature count")
		}
	}()
	e.Encode(make([]float64, 5))
}

func TestProjectionDeterministic(t *testing.T) {
	a := NewProjection(512, 6, 9)
	b := NewProjection(512, 6, 9)
	x := []float64{1, -0.5, 0.25, 0, 0.75, -1}
	if !a.Encode(x).Equal(b.Encode(x)) {
		t.Fatal("same seed produced different encodings")
	}
}

func TestProjectionPreservesAngles(t *testing.T) {
	// Sign random projections: hypervector cosine ~ 1 - 2*theta/pi.
	e := NewProjection(16384, 32, 11)
	r := hv.NewRNG(4)
	a := make([]float64, 32)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	// b = a rotated slightly: cos(theta) ~ 0.9.
	b := make([]float64, 32)
	noise := make([]float64, 32)
	var na, nn float64
	for i := range b {
		noise[i] = r.NormFloat64()
		na += a[i] * a[i]
		nn += noise[i] * noise[i]
	}
	scale := math.Sqrt(na/nn) * 0.48
	var dot, nb float64
	for i := range b {
		b[i] = a[i] + scale*noise[i]
		dot += a[i] * b[i]
		nb += b[i] * b[i]
	}
	cosTheta := dot / math.Sqrt(na*nb)
	want := ProjectionKernel(cosTheta)
	got := e.Encode(a).Cos(e.Encode(b))
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("kernel mismatch: got %v, want %v (cosTheta %v)", got, want, cosTheta)
	}
}

func TestProjectionKernelEndpoints(t *testing.T) {
	if ProjectionKernel(1) != 1 {
		t.Fatal("kernel(1) != 1")
	}
	if math.Abs(ProjectionKernel(-1)+1) > 1e-12 {
		t.Fatal("kernel(-1) != -1")
	}
	if math.Abs(ProjectionKernel(0)) > 1e-12 {
		t.Fatal("kernel(0) != 0")
	}
	// Clamping.
	if ProjectionKernel(2) != 1 || ProjectionKernel(-2) != -1 {
		t.Fatal("kernel does not clamp")
	}
}

func TestEncodersImplementInterface(t *testing.T) {
	var _ Encoder = NewIDLevel(256, 4, 8, 0, 1, 1)
	var _ Encoder = NewProjection(256, 4, 1)
}

func BenchmarkIDLevelEncode(b *testing.B) {
	e := NewIDLevel(4096, 324, 32, 0, 1, 1)
	x := make([]float64, 324)
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Encode(x)
	}
}

func BenchmarkProjectionEncode(b *testing.B) {
	e := NewProjection(4096, 324, 1)
	x := make([]float64, 324)
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Encode(x)
	}
}
