package cascade

import (
	"bytes"
	"strings"
	"testing"

	"hdface/internal/dataset"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
)

// windows renders a balanced face/no-face window set.
func windows(n, win int, seed uint64) ([]*imgproc.Image, []int) {
	r := hv.NewRNG(seed)
	var imgs []*imgproc.Image
	var labels []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			imgs = append(imgs, dataset.RenderFace(win, win, dataset.Emotion(r.Intn(7)), r))
			labels = append(labels, 1)
		} else {
			imgs = append(imgs, dataset.RenderNonFace(win, win, r))
			labels = append(labels, 0)
		}
	}
	return imgs, labels
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 24, TrainOpts{}); err == nil {
		t.Fatal("accepted empty training set")
	}
	imgs, _ := windows(4, 24, 1)
	if _, err := Train(imgs, []int{1}, 24, TrainOpts{}); err == nil {
		t.Fatal("accepted misaligned labels")
	}
}

func TestTrainSeparatesFaces(t *testing.T) {
	imgs, labels := windows(60, 24, 2)
	det, err := Train(imgs, labels, 24, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := det.Accuracy(imgs, labels); acc < 0.85 {
		t.Fatalf("train accuracy %v", acc)
	}
	testImgs, testLabels := windows(30, 24, 77)
	if acc := det.Accuracy(testImgs, testLabels); acc < 0.7 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestCascadeRecall(t *testing.T) {
	// Stage shifts are tuned for high recall on the training positives.
	imgs, labels := windows(60, 24, 3)
	det, err := Train(imgs, labels, 24, TrainOpts{TargetRecall: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	positives := 0
	for i, img := range imgs {
		if labels[i] != 1 {
			continue
		}
		positives++
		if !det.Classify(img) {
			missed++
		}
	}
	if float64(missed)/float64(positives) > 0.1 {
		t.Fatalf("missed %d of %d training positives", missed, positives)
	}
}

func TestStumpClassify(t *testing.T) {
	s := Stump{Feature: 0, Thresh: 0.5, Polarity: 1}
	if s.classify([]float64{0.7}) != 1 || s.classify([]float64{0.3}) != -1 {
		t.Fatal("polarity +1 wrong")
	}
	s.Polarity = -1
	if s.classify([]float64{0.7}) != -1 || s.classify([]float64{0.3}) != 1 {
		t.Fatal("polarity -1 wrong")
	}
}

func TestStageScore(t *testing.T) {
	st := Stage{Stumps: []Stump{
		{Feature: 0, Thresh: 0, Polarity: 1, Alpha: 2},
		{Feature: 1, Thresh: 0, Polarity: 1, Alpha: 1},
	}}
	// Both positive: 2 + 1 = 3.
	if got := st.Score([]float64{1, 1}); got != 3 {
		t.Fatalf("score %v, want 3", got)
	}
	// Disagreement: 2 - 1 = 1.
	if got := st.Score([]float64{1, -1}); got != 1 {
		t.Fatalf("score %v, want 1", got)
	}
	st.Shift = -2
	if got := st.Score([]float64{1, 1}); got != 1 {
		t.Fatalf("shifted score %v, want 1", got)
	}
}

func TestDefaults(t *testing.T) {
	o := TrainOpts{}.withDefaults()
	if o.Stages != 3 || o.StumpsPerStage != 4 || o.TargetRecall != 0.99 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestDetectOnScene(t *testing.T) {
	imgs, labels := windows(60, 24, 4)
	det, err := Train(imgs, labels, 24, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	scene := dataset.GenerateScene(96, 72, 24, 2, 5)
	boxes := det.Detect(scene.Image, 12)
	// At least one detection should overlap a true face.
	hit := false
	for _, b := range boxes {
		if scene.InBox(b[0], b[1], b[2], b[3]) {
			hit = true
		}
	}
	if len(boxes) > 0 && !hit {
		t.Logf("detections %v missed faces %v (acceptable on tiny cascade)", boxes, scene.Faces)
	}
	if det.FeatureEvals == 0 {
		t.Fatal("feature evaluations not counted")
	}
}

func TestDetectDefaultStride(t *testing.T) {
	imgs, labels := windows(40, 24, 6)
	det, err := Train(imgs, labels, 24, TrainOpts{Stages: 1})
	if err != nil {
		t.Fatal(err)
	}
	scene := dataset.GenerateScene(72, 48, 24, 1, 7)
	// stride <= 0 falls back to win/2.
	det.Detect(scene.Image, 0)
}

func TestStringSummary(t *testing.T) {
	imgs, labels := windows(30, 24, 8)
	det, err := Train(imgs, labels, 24, TrainOpts{Stages: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := det.String()
	if !strings.Contains(s, "win:24") || !strings.Contains(s, "stages:") {
		t.Fatalf("summary %q", s)
	}
}

func TestBestStumpPerfectSplit(t *testing.T) {
	// A feature that perfectly separates must yield ~zero error.
	X := [][]float64{{0.1}, {0.2}, {0.8}, {0.9}}
	y := []int{-1, -1, 1, 1}
	active := []int{0, 1, 2, 3}
	w := map[int]float64{0: 0.25, 1: 0.25, 2: 0.25, 3: 0.25}
	s, err := bestStump(X, y, active, w, 1)
	if err != 0 {
		t.Fatalf("perfect split error %v", err)
	}
	if s.classify([]float64{0.9}) != 1 || s.classify([]float64{0.1}) != -1 {
		t.Fatalf("stump %+v misclassifies", s)
	}
}

func BenchmarkClassify(b *testing.B) {
	imgs, labels := windows(40, 24, 9)
	det, err := Train(imgs, labels, 24, TrainOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Classify(imgs[i%len(imgs)])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	imgs, labels := windows(40, 24, 10)
	det, err := Train(imgs, labels, 24, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same decisions on every training window.
	for i, img := range imgs {
		if det.Classify(img) != got.Classify(img) {
			t.Fatalf("decision %d changed after round trip", i)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage loaded")
	}
}
