// Package cascade implements a Viola-Jones-style face detector: decision
// stumps over HAAR rectangle features, boosted with discrete AdaBoost and
// arranged in an attentional cascade. It is the classical fast-rejection
// baseline the HAAR literature the paper cites ([8], [10]) compares HOG
// pipelines against, and serves here as an additional detection baseline
// and a consumer of the internal/haar substrate.
package cascade

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hdface/internal/detect"
	"hdface/internal/haar"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// Observability series for the attentional cascade. Rejections are counted
// per cascade stage (lazily created, one labelled series per stage index)
// so the early-rejection economy — most windows dying in the cheap first
// stages — is visible in the -stats report. They record nothing unless obs
// is enabled.
var (
	obsCWindows   = obs.NewCounter("hdface_cascade_windows_total", "windows classified by the cascade")
	obsCAccepts   = obs.NewCounter("hdface_cascade_accepts_total", "windows accepted by every cascade stage")
	obsCFeatEvals = obs.NewCounter("hdface_cascade_feature_evals_total", "HAAR feature evaluations during classification")

	stageRejectsMu sync.Mutex
	stageRejects   []*obs.Counter
)

// stageRejectCounter returns the labelled rejection counter for cascade
// stage i, creating intermediate stages as needed. Only called when obs is
// enabled, keeping fmt and the lock off the disabled path.
func stageRejectCounter(i int) *obs.Counter {
	stageRejectsMu.Lock()
	defer stageRejectsMu.Unlock()
	for len(stageRejects) <= i {
		stageRejects = append(stageRejects, obs.NewCounter(
			fmt.Sprintf(`hdface_cascade_stage_rejections_total{stage="%d"}`, len(stageRejects)),
			"windows rejected at this cascade stage"))
	}
	return stageRejects[i]
}

// Stump is a one-feature threshold classifier: sign * (x[Feature] - Thresh).
type Stump struct {
	Feature  int
	Thresh   float64
	Polarity int     // +1: positive above threshold, -1: below
	Alpha    float64 // boosting weight
}

// classify returns +1 or -1 for a feature vector.
func (s Stump) classify(x []float64) int {
	return s.classifyVal(x[s.Feature])
}

// classifyVal returns +1 or -1 for the stump's own feature value.
func (s Stump) classifyVal(v float64) int {
	if s.Polarity*sign(v-s.Thresh) >= 0 {
		return 1
	}
	return -1
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Stage is one boosted committee with a rejection threshold.
type Stage struct {
	Stumps []Stump
	// Shift moves the committee's decision threshold; negative values
	// favour detections (fewer misses, more false positives), which is
	// how early cascade stages are tuned.
	Shift float64
}

// Score returns the weighted committee margin for x.
func (st Stage) Score(x []float64) float64 {
	var s float64
	for _, stump := range st.Stumps {
		s += stump.Alpha * float64(stump.classify(x))
	}
	return s + st.Shift
}

// Detector is a trained cascade over a HAAR feature bank.
type Detector struct {
	Win    int
	Bank   []haar.Feature
	Stages []Stage
	// FeatureEvals counts feature evaluations during Detect, showing the
	// cascade's early-rejection economy.
	FeatureEvals int64
}

// TrainOpts configures cascade training.
type TrainOpts struct {
	// Stages is the cascade depth (default 3).
	Stages int
	// StumpsPerStage grows per stage: stage i gets StumpsPerStage*(i+1)
	// stumps (default 4).
	StumpsPerStage int
	// TargetRecall tunes each stage's Shift so at least this fraction of
	// training positives pass (default 0.99).
	TargetRecall float64
}

func (o TrainOpts) withDefaults() TrainOpts {
	if o.Stages == 0 {
		o.Stages = 3
	}
	if o.StumpsPerStage == 0 {
		o.StumpsPerStage = 4
	}
	if o.TargetRecall == 0 {
		o.TargetRecall = 0.99
	}
	return o
}

// Train boosts a cascade from window images: label 1 = face, 0 = no face.
func Train(imgs []*imgproc.Image, labels []int, win int, opts TrainOpts) (*Detector, error) {
	if len(imgs) == 0 || len(imgs) != len(labels) {
		return nil, errors.New("cascade: images and labels must be non-empty and aligned")
	}
	opts = opts.withDefaults()
	ext := haar.New(win)
	det := &Detector{Win: win, Bank: ext.Bank}

	// Precompute the full feature matrix once.
	X := make([][]float64, len(imgs))
	y := make([]int, len(imgs)) // +-1
	for i, img := range imgs {
		X[i] = ext.Features(img)
		if labels[i] == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	// Active set shrinks as stages reject negatives.
	active := make([]int, len(imgs))
	for i := range active {
		active[i] = i
	}
	for stage := 0; stage < opts.Stages; stage++ {
		nStumps := opts.StumpsPerStage * (stage + 1)
		st, err := boostStage(X, y, active, nStumps)
		if err != nil {
			return nil, err
		}
		// Tune Shift for the target recall on active positives.
		var posScores []float64
		for _, i := range active {
			if y[i] == 1 {
				posScores = append(posScores, st.Score(X[i]))
			}
		}
		if len(posScores) == 0 {
			return nil, errors.New("cascade: a stage ran out of positives")
		}
		sort.Float64s(posScores)
		idx := int(float64(len(posScores)) * (1 - opts.TargetRecall))
		if idx >= len(posScores) {
			idx = len(posScores) - 1
		}
		// Pass everything scoring at least the idx-th positive.
		st.Shift -= posScores[idx]
		det.Stages = append(det.Stages, st)

		// Drop rejected negatives from the active set.
		var next []int
		for _, i := range active {
			if y[i] == 1 || st.Score(X[i]) >= 0 {
				next = append(next, i)
			}
		}
		active = next
		negLeft := 0
		for _, i := range active {
			if y[i] == -1 {
				negLeft++
			}
		}
		if negLeft == 0 {
			break // all negatives rejected; deeper stages are pointless
		}
	}
	return det, nil
}

// boostStage runs discrete AdaBoost with decision stumps on the active set.
func boostStage(X [][]float64, y []int, active []int, nStumps int) (Stage, error) {
	if len(active) == 0 {
		return Stage{}, errors.New("cascade: empty active set")
	}
	nFeat := len(X[active[0]])
	w := make(map[int]float64, len(active))
	for _, i := range active {
		w[i] = 1 / float64(len(active))
	}
	var st Stage
	for s := 0; s < nStumps; s++ {
		best, bestErr := bestStump(X, y, active, w, nFeat)
		if bestErr >= 0.5 {
			break // no stump better than chance remains
		}
		eps := math.Max(bestErr, 1e-10)
		best.Alpha = 0.5 * math.Log((1-eps)/eps)
		st.Stumps = append(st.Stumps, best)
		// Reweight: emphasise mistakes.
		var total float64
		for _, i := range active {
			if best.classify(X[i]) != y[i] {
				w[i] *= math.Exp(best.Alpha)
			} else {
				w[i] *= math.Exp(-best.Alpha)
			}
			total += w[i]
		}
		for _, i := range active {
			w[i] /= total
		}
	}
	if len(st.Stumps) == 0 {
		return Stage{}, errors.New("cascade: boosting found no useful stump")
	}
	return st, nil
}

// bestStump exhaustively finds the lowest weighted-error stump.
func bestStump(X [][]float64, y []int, active []int, w map[int]float64, nFeat int) (Stump, float64) {
	best := Stump{}
	bestErr := math.Inf(1)
	type pair struct {
		v   float64
		idx int
	}
	vals := make([]pair, len(active))
	for f := 0; f < nFeat; f++ {
		for j, i := range active {
			vals[j] = pair{X[i][f], i}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		// Sweep thresholds between consecutive values. errAbove = weighted
		// error of "positive above threshold" with threshold below all.
		var errAbove float64
		for _, p := range vals {
			if y[p.idx] == -1 {
				errAbove += w[p.idx]
			}
		}
		check := func(thresh, eAbove float64) {
			if eAbove < bestErr {
				best = Stump{Feature: f, Thresh: thresh, Polarity: 1}
				bestErr = eAbove
			}
			if 1-eAbove < bestErr {
				best = Stump{Feature: f, Thresh: thresh, Polarity: -1}
				bestErr = 1 - eAbove
			}
		}
		check(vals[0].v-1e-9, errAbove)
		for j := 0; j < len(vals); j++ {
			// Moving the threshold just above vals[j] flips sample j from
			// "above" to "below".
			if y[vals[j].idx] == 1 {
				errAbove += w[vals[j].idx]
			} else {
				errAbove -= w[vals[j].idx]
			}
			thresh := vals[j].v + 1e-9
			if j+1 < len(vals) {
				thresh = (vals[j].v + vals[j+1].v) / 2
			}
			check(thresh, errAbove)
		}
	}
	return best, bestErr
}

// scoreLazy runs the stage loop over a per-feature evaluator, computing
// each HAAR feature at most once and only when a stump asks for it — the
// attentional-cascade economy: a window rejected by stage 0 pays for stage
// 0's features only, not the whole bank. Returns acceptance, the margin of
// the last stage evaluated, and the number of distinct features computed.
func (d *Detector) scoreLazy(eval func(fi int) float64) (ok bool, margin float64, evals int64) {
	memo := make(map[int]float64, 16)
	get := func(fi int) float64 {
		if v, hit := memo[fi]; hit {
			return v
		}
		v := eval(fi)
		memo[fi] = v
		return v
	}
	for i, st := range d.Stages {
		var s float64
		for _, stump := range st.Stumps {
			s += stump.Alpha * float64(stump.classifyVal(get(stump.Feature)))
		}
		margin = s + st.Shift
		if margin < 0 {
			if obs.Enabled() {
				stageRejectCounter(i).Inc()
			}
			return false, margin, int64(len(memo))
		}
	}
	return true, margin, int64(len(memo))
}

// account folds one window's outcome into the work counters (atomically —
// detection sweeps classify windows from several goroutines).
func (d *Detector) account(ok bool, evals int64) {
	atomic.AddInt64(&d.FeatureEvals, evals)
	obsCWindows.Inc()
	obsCFeatEvals.Add(evals)
	if ok {
		obsCAccepts.Inc()
	}
}

// Classify runs the cascade on one window: every stage must accept.
func (d *Detector) Classify(img *imgproc.Image) bool {
	ok, _ := d.ScoreWindow(img)
	return ok
}

// ScoreWindow classifies one window and returns the margin of the last
// stage reached, implementing detect.WindowScorer. Features are evaluated
// lazily against the window's integral image.
func (d *Detector) ScoreWindow(img *imgproc.Image) (bool, float64) {
	if img.W != d.Win || img.H != d.Win {
		img = img.Resize(d.Win, d.Win)
	}
	it := imgproc.NewIntegral(img)
	ok, margin, evals := d.scoreLazy(func(fi int) float64 { return d.Bank[fi].Eval(it) })
	d.account(ok, evals)
	return ok, margin
}

// Fork implements detect.Forker. The detector is read-only during
// classification (counters are atomic), so every worker shares it.
func (d *Detector) Fork() detect.WindowScorer { return d }

// PrepareLevel implements detect.GridScorer: one integral image per
// pyramid level, shared by every window, replaces the per-window crop,
// resize and integral rebuild. Levels whose window size differs from the
// training window fall back to ScoreWindow (which resizes).
func (d *Detector) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) detect.LevelScorer {
	if win != d.Win {
		return nil
	}
	return &levelCascade{d: d, it: imgproc.NewIntegral(level)}
}

// levelCascade scores windows of one pyramid level against the level's
// shared integral image.
type levelCascade struct {
	d  *Detector
	it *imgproc.Integral
}

// ScoreAt classifies the window at (x, y) by translating every bank
// feature onto the shared integral. The arithmetic is exact, so results
// match ScoreWindow on the cropped window bit for bit.
func (l *levelCascade) ScoreAt(x, y, idx int) (bool, float64) {
	ok, margin, evals := l.d.scoreLazy(func(fi int) float64 { return l.d.Bank[fi].EvalAt(l.it, x, y) })
	l.d.account(ok, evals)
	return ok, margin
}

// Fork implements detect.LevelScorer; the integral is read-only.
func (l *levelCascade) Fork() detect.LevelScorer { return l }

// Accuracy evaluates window classification accuracy.
func (d *Detector) Accuracy(imgs []*imgproc.Image, labels []int) float64 {
	if len(imgs) == 0 {
		return 0
	}
	correct := 0
	for i, img := range imgs {
		got := 0
		if d.Classify(img) {
			got = 1
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(imgs))
}

// Detect slides the cascade over a scene and returns detected boxes in
// row-major order. It runs on the shared sweep engine: one integral image
// per scene, lazily evaluated stages, all CPUs — the exact same boxes the
// old crop-per-window loop produced, much faster.
func (d *Detector) Detect(scene *imgproc.Image, stride int) [][4]int {
	if stride <= 0 {
		stride = d.Win / 2
	}
	boxes, _, err := detect.Sweep(context.Background(), scene, d, detect.Params{
		Win:     d.Win,
		Stride:  stride,
		Scales:  []float64{1},
		NMSIoU:  -1, // callers historically received every raw hit
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		// Only malformed Params can fail, and ours are fixed.
		panic(fmt.Sprintf("cascade: %v", err))
	}
	sort.Slice(boxes, func(i, j int) bool {
		if boxes[i].Y0 != boxes[j].Y0 {
			return boxes[i].Y0 < boxes[j].Y0
		}
		return boxes[i].X0 < boxes[j].X0
	})
	var out [][4]int
	for _, b := range boxes {
		out = append(out, [4]int{b.X0, b.Y0, b.X1, b.Y1})
	}
	return out
}

// String summarises the cascade.
func (d *Detector) String() string {
	total := 0
	for _, st := range d.Stages {
		total += len(st.Stumps)
	}
	return fmt.Sprintf("cascade.Detector{win:%d, stages:%d, stumps:%d, bank:%d}",
		d.Win, len(d.Stages), total, len(d.Bank))
}

// Save writes the detector in gob format (the HAAR bank is regenerable but
// stored anyway so loaded detectors are self-contained).
func (d *Detector) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(d)
}

// Load reads a detector written by Save.
func Load(r io.Reader) (*Detector, error) {
	var d Detector
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	if d.Win <= 0 || len(d.Bank) == 0 || len(d.Stages) == 0 {
		return nil, errors.New("cascade: malformed detector")
	}
	return &d, nil
}
