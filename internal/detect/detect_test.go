package detect

import (
	"math"
	"testing"

	"hdface/internal/imgproc"
)

func TestIoU(t *testing.T) {
	a := Box{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if got := IoU(a, a); got != 1 {
		t.Fatalf("self IoU %v", got)
	}
	b := Box{X0: 5, Y0: 0, X1: 15, Y1: 10}
	// inter 50, union 150.
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("half-overlap IoU %v", got)
	}
	c := Box{X0: 20, Y0: 20, X1: 30, Y1: 30}
	if IoU(a, c) != 0 {
		t.Fatal("disjoint IoU != 0")
	}
	// Degenerate box.
	if IoU(a, Box{X0: 5, Y0: 5, X1: 5, Y1: 5}) != 0 {
		t.Fatal("degenerate IoU != 0")
	}
}

func TestNMSKeepsBestAndSuppressesOverlaps(t *testing.T) {
	boxes := []Box{
		{X0: 0, Y0: 0, X1: 10, Y1: 10, Score: 0.5},
		{X0: 1, Y0: 1, X1: 11, Y1: 11, Score: 0.9}, // overlaps first
		{X0: 50, Y0: 50, X1: 60, Y1: 60, Score: 0.3},
	}
	kept := NMS(boxes, 0.3)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.3 {
		t.Fatalf("wrong survivors: %+v", kept)
	}
	// Threshold 1.0 keeps everything except exact duplicates.
	if got := NMS(boxes, 1.0); len(got) != 3 {
		t.Fatalf("iou=1 kept %d", len(got))
	}
	if NMS(nil, 0.5) != nil {
		t.Fatal("empty NMS should be nil")
	}
}

// brightScorer fires on windows whose mean exceeds a threshold, scoring by
// the mean — a deterministic classifier stub.
func brightScorer(win *imgproc.Image) (bool, float64) {
	m := win.Mean()
	return m > 128, m
}

func TestRunFindsBrightPatchAtNativeScale(t *testing.T) {
	img := imgproc.NewImage(96, 96)
	img.FillRect(24, 24, 72, 72, 255) // a 48x48 bright square
	boxes := Run(img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	if len(boxes) == 0 {
		t.Fatal("no detections")
	}
	best := boxes[0]
	gt := Box{X0: 24, Y0: 24, X1: 72, Y1: 72}
	if IoU(best, gt) < 0.5 {
		t.Fatalf("best box %+v far from truth", best)
	}
}

func TestRunFindsLargeObjectViaPyramid(t *testing.T) {
	// A 96x96 bright square cannot fit one 48-window at native scale but
	// matches at scale 2.
	img := imgproc.NewImage(192, 192)
	img.FillRect(48, 48, 144, 144, 255)
	native := Run(img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	multi := Run(img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1, 2}})
	gt := Box{X0: 48, Y0: 48, X1: 144, Y1: 144}
	bestIoU := func(boxes []Box) float64 {
		best := 0.0
		for _, b := range boxes {
			if v := IoU(b, gt); v > best {
				best = v
			}
		}
		return best
	}
	if bestIoU(multi) <= bestIoU(native) {
		t.Fatalf("pyramid did not improve coverage: %v vs %v", bestIoU(multi), bestIoU(native))
	}
	if bestIoU(multi) < 0.6 {
		t.Fatalf("scale-2 window still misses: IoU %v", bestIoU(multi))
	}
	// Scale-2 hits must carry their scale.
	found := false
	for _, b := range multi {
		if b.Scale == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no scale-2 detection recorded")
	}
}

func TestRunSkipsTooSmallLevels(t *testing.T) {
	img := imgproc.NewImage(60, 60)
	img.Fill(255)
	// Scale 2 gives a 30x30 level, smaller than the 48 window: skipped.
	boxes := Run(img, brightScorer, Params{Win: 48, Stride: 48, Scales: []float64{1, 2, -1}})
	for _, b := range boxes {
		if b.Scale != 1 {
			t.Fatalf("impossible scale %v", b.Scale)
		}
	}
}

func TestRunNMSDisabled(t *testing.T) {
	img := imgproc.NewImage(96, 48)
	img.Fill(255)
	with := Run(img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	without := Run(img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}, NMSIoU: -1})
	if len(without) <= len(with) {
		t.Fatalf("disabling NMS should keep more boxes: %d vs %d", len(without), len(with))
	}
}

func TestMatchTruth(t *testing.T) {
	truth := [][4]int{{0, 0, 48, 48}, {100, 100, 148, 148}}
	dets := []Box{
		{X0: 2, Y0: 2, X1: 50, Y1: 50, Score: 0.9},       // matches truth 0
		{X0: 200, Y0: 200, X1: 248, Y1: 248, Score: 0.5}, // false positive
	}
	tp, fp, fn := MatchTruth(dets, truth, 0.5)
	if tp != 1 || fp != 1 || fn != 1 {
		t.Fatalf("tp=%d fp=%d fn=%d", tp, fp, fn)
	}
	// Two detections on one truth: only the best counts.
	dets2 := []Box{
		{X0: 0, Y0: 0, X1: 48, Y1: 48, Score: 0.9},
		{X0: 1, Y0: 1, X1: 49, Y1: 49, Score: 0.8},
	}
	tp, fp, fn = MatchTruth(dets2, truth[:1], 0.5)
	if tp != 1 || fp != 1 || fn != 0 {
		t.Fatalf("duplicate handling: tp=%d fp=%d fn=%d", tp, fp, fn)
	}
	// Empty inputs.
	tp, fp, fn = MatchTruth(nil, truth, 0.5)
	if tp != 0 || fp != 0 || fn != 2 {
		t.Fatal("empty detections wrong")
	}
}
