package detect

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"hdface/internal/imgproc"
)

func TestIoU(t *testing.T) {
	a := Box{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if got := IoU(a, a); got != 1 {
		t.Fatalf("self IoU %v", got)
	}
	b := Box{X0: 5, Y0: 0, X1: 15, Y1: 10}
	// inter 50, union 150.
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("half-overlap IoU %v", got)
	}
	c := Box{X0: 20, Y0: 20, X1: 30, Y1: 30}
	if IoU(a, c) != 0 {
		t.Fatal("disjoint IoU != 0")
	}
	// Degenerate box.
	if IoU(a, Box{X0: 5, Y0: 5, X1: 5, Y1: 5}) != 0 {
		t.Fatal("degenerate IoU != 0")
	}
}

func TestNMSKeepsBestAndSuppressesOverlaps(t *testing.T) {
	boxes := []Box{
		{X0: 0, Y0: 0, X1: 10, Y1: 10, Score: 0.5},
		{X0: 1, Y0: 1, X1: 11, Y1: 11, Score: 0.9}, // overlaps first
		{X0: 50, Y0: 50, X1: 60, Y1: 60, Score: 0.3},
	}
	kept := NMS(boxes, 0.3)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.3 {
		t.Fatalf("wrong survivors: %+v", kept)
	}
	// Threshold 1.0 keeps everything except exact duplicates.
	if got := NMS(boxes, 1.0); len(got) != 3 {
		t.Fatalf("iou=1 kept %d", len(got))
	}
	if NMS(nil, 0.5) != nil {
		t.Fatal("empty NMS should be nil")
	}
}

func TestNMSDeterministicTieBreak(t *testing.T) {
	// Equal scores: larger area wins, then smaller X0, then smaller Y0 —
	// regardless of input order.
	boxes := []Box{
		{X0: 40, Y0: 0, X1: 50, Y1: 10, Score: 0.7},
		{X0: 20, Y0: 0, X1: 30, Y1: 10, Score: 0.7},
		{X0: 20, Y0: 20, X1: 30, Y1: 30, Score: 0.7},
		{X0: 0, Y0: 0, X1: 12, Y1: 12, Score: 0.7}, // biggest area
	}
	want := []Box{boxes[3], boxes[1], boxes[2], boxes[0]}
	for perm := 0; perm < 4; perm++ {
		in := append([]Box(nil), boxes[perm:]...)
		in = append(in, boxes[:perm]...)
		got := NMS(in, 0.99)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %d reordered ties:\n got %+v\nwant %+v", perm, got, want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Win: -1},
		{Stride: -3},
		{Workers: -2},
		{Scales: []float64{1, 0}},
		{Scales: []float64{-2}},
		{Scales: []float64{math.Inf(1)}},
		{Scales: []float64{math.NaN()}},
	}
	for i, p := range bad {
		if _, err := p.normalize(); err == nil {
			t.Errorf("params %d (%+v) should be rejected", i, p)
		}
	}
	p, err := Params{Scales: []float64{2, 1, 1.5, 2}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Scales, []float64{1, 1.5, 2}) {
		t.Fatalf("scales not deduped+sorted: %v", p.Scales)
	}
	if p.Win != 48 || p.Stride != 24 || p.Workers != 1 || p.NMSIoU != 0.3 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if _, err := Run(imgproc.NewImage(64, 64), brightScorer, Params{Win: -5}); err == nil {
		t.Fatal("Run should surface validation errors")
	}
}

// brightScorer fires on windows whose mean exceeds a threshold, scoring by
// the mean — a deterministic classifier stub.
func brightScorer(win *imgproc.Image) (bool, float64) {
	m := win.Mean()
	return m > 128, m
}

func mustRun(t *testing.T, img *imgproc.Image, s Scorer, p Params) []Box {
	t.Helper()
	boxes, err := Run(img, s, p)
	if err != nil {
		t.Fatal(err)
	}
	return boxes
}

func TestRunFindsBrightPatchAtNativeScale(t *testing.T) {
	img := imgproc.NewImage(96, 96)
	img.FillRect(24, 24, 72, 72, 255) // a 48x48 bright square
	boxes := mustRun(t, img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	if len(boxes) == 0 {
		t.Fatal("no detections")
	}
	best := boxes[0]
	gt := Box{X0: 24, Y0: 24, X1: 72, Y1: 72}
	if IoU(best, gt) < 0.5 {
		t.Fatalf("best box %+v far from truth", best)
	}
}

func TestRunFindsLargeObjectViaPyramid(t *testing.T) {
	// A 96x96 bright square cannot fit one 48-window at native scale but
	// matches at scale 2.
	img := imgproc.NewImage(192, 192)
	img.FillRect(48, 48, 144, 144, 255)
	native := mustRun(t, img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	multi := mustRun(t, img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1, 2}})
	gt := Box{X0: 48, Y0: 48, X1: 144, Y1: 144}
	bestIoU := func(boxes []Box) float64 {
		best := 0.0
		for _, b := range boxes {
			if v := IoU(b, gt); v > best {
				best = v
			}
		}
		return best
	}
	if bestIoU(multi) <= bestIoU(native) {
		t.Fatalf("pyramid did not improve coverage: %v vs %v", bestIoU(multi), bestIoU(native))
	}
	if bestIoU(multi) < 0.6 {
		t.Fatalf("scale-2 window still misses: IoU %v", bestIoU(multi))
	}
	// Scale-2 hits must carry their scale.
	found := false
	for _, b := range multi {
		if b.Scale == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no scale-2 detection recorded")
	}
}

func TestSweepReportsSkippedLevels(t *testing.T) {
	img := imgproc.NewImage(60, 60)
	img.Fill(255)
	// Scale 2 gives a 30x30 level, smaller than the 48 window: skipped,
	// and the skip is visible in the sweep stats.
	boxes, stats, err := Sweep(context.Background(), img, Scorer(brightScorer),
		Params{Win: 48, Stride: 48, Scales: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range boxes {
		if b.Scale != 1 {
			t.Fatalf("impossible scale %v", b.Scale)
		}
	}
	if stats.SkippedLevels != 1 || stats.Levels != 1 {
		t.Fatalf("stats %+v, want 1 swept + 1 skipped level", stats)
	}
	if len(stats.WindowsPerLevel) != 1 || stats.WindowsPerLevel[0] != stats.Windows {
		t.Fatalf("per-level windows %v vs total %d", stats.WindowsPerLevel, stats.Windows)
	}
	if stats.Windows != 1 || stats.Hits != 1 {
		t.Fatalf("60x60 at stride 48 should give 1 window, 1 hit: %+v", stats)
	}
}

func TestRunNMSDisabled(t *testing.T) {
	img := imgproc.NewImage(96, 48)
	img.Fill(255)
	with := mustRun(t, img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}})
	without := mustRun(t, img, brightScorer, Params{Win: 48, Stride: 24, Scales: []float64{1}, NMSIoU: -1})
	if len(without) <= len(with) {
		t.Fatalf("disabling NMS should keep more boxes: %d vs %d", len(without), len(with))
	}
}

// stubScorer is a deterministic GridScorer+Forker stub: windows hit when a
// hash of (level geometry, window index) clears a threshold, so every
// worker count must reproduce the same boxes.
type stubScorer struct {
	fallback bool // make PrepareLevel decline, exercising ScoreWindow forks
}

func stubScore(w, h, idx int) (bool, float64) {
	x := uint64(w)*0x9e3779b9 ^ uint64(h)*0x85ebca6b ^ uint64(idx)*0xc2b2ae35
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	v := float64(x%1000) / 1000
	return v > 0.8, v
}

func (s *stubScorer) ScoreWindow(win *imgproc.Image) (bool, float64) {
	return stubScore(win.W, win.H, int(win.Mean()))
}

func (s *stubScorer) Fork() WindowScorer { return s }

type stubLevel struct{ w, h int }

func (l *stubLevel) ScoreAt(x, y, idx int) (bool, float64) { return stubScore(l.w, l.h, idx) }
func (l *stubLevel) Fork() LevelScorer                     { return l }

func (s *stubScorer) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) LevelScorer {
	if s.fallback {
		return nil
	}
	return &stubLevel{w: level.W, h: level.H}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	img := imgproc.NewImage(256, 256)
	// Texture the image so the fallback path (which hashes window means)
	// sees distinct windows.
	for y := 0; y < img.H; y += 4 {
		img.FillRect(0, y, img.W, y+2, uint8(y))
	}
	base := Params{Win: 32, Stride: 16, Scales: []float64{1, 1.5, 2}, NMSIoU: -1}
	ref, refStats, err := Sweep(context.Background(), img, &stubScorer{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.PreparedLevels != refStats.Levels || refStats.FallbackWindows != 0 {
		t.Fatalf("stub should score every level via the grid path: %+v", refStats)
	}
	if refStats.Hits == 0 {
		t.Fatal("stub produced no hits; test is vacuous")
	}
	for _, workers := range []int{2, 3, 8} {
		p := base
		p.Workers = workers
		got, stats, err := Sweep(context.Background(), img, &stubScorer{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Workers != workers {
			t.Fatalf("workers clamped to %d, want %d", stats.Workers, workers)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d workers changed output:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
	// Same contract through the ScoreWindow fallback path: a forkable
	// scorer keeps its workers and the output still matches single-worker.
	fbBase := base
	fbRef, _, err := Sweep(context.Background(), img, &stubScorer{fallback: true}, fbBase)
	if err != nil {
		t.Fatal(err)
	}
	if len(fbRef) == 0 {
		t.Fatal("fallback sweep found nothing; test is vacuous")
	}
	fbBase.Workers = 4
	fb, fbStats, err := Sweep(context.Background(), img, &stubScorer{fallback: true}, fbBase)
	if err != nil {
		t.Fatal(err)
	}
	if fbStats.PreparedLevels != 0 || fbStats.PreparedWindows != 0 {
		t.Fatalf("fallback stub should not report grid levels: %+v", fbStats)
	}
	if fbStats.Workers != 4 {
		t.Fatalf("forkable fallback scorer should keep 4 workers, got %d", fbStats.Workers)
	}
	if !reflect.DeepEqual(fb, fbRef) {
		t.Fatalf("fallback workers changed output:\n got %+v\nwant %+v", fb, fbRef)
	}
}

func TestSweepClampsWorkersWithoutFork(t *testing.T) {
	img := imgproc.NewImage(96, 96)
	img.Fill(255)
	// A bare Scorer function cannot be forked: the sweep must fall back to
	// one worker rather than share it across goroutines.
	_, stats, err := Sweep(context.Background(), img, Scorer(brightScorer),
		Params{Win: 48, Stride: 24, Scales: []float64{1}, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 1 {
		t.Fatalf("unforkable scorer swept with %d workers", stats.Workers)
	}
}

func TestMatchTruth(t *testing.T) {
	truth := [][4]int{{0, 0, 48, 48}, {100, 100, 148, 148}}
	dets := []Box{
		{X0: 2, Y0: 2, X1: 50, Y1: 50, Score: 0.9},       // matches truth 0
		{X0: 200, Y0: 200, X1: 248, Y1: 248, Score: 0.5}, // false positive
	}
	tp, fp, fn := MatchTruth(dets, truth, 0.5)
	if tp != 1 || fp != 1 || fn != 1 {
		t.Fatalf("tp=%d fp=%d fn=%d", tp, fp, fn)
	}
	// Two detections on one truth: only the best counts.
	dets2 := []Box{
		{X0: 0, Y0: 0, X1: 48, Y1: 48, Score: 0.9},
		{X0: 1, Y0: 1, X1: 49, Y1: 49, Score: 0.8},
	}
	tp, fp, fn = MatchTruth(dets2, truth[:1], 0.5)
	if tp != 1 || fp != 1 || fn != 0 {
		t.Fatalf("duplicate handling: tp=%d fp=%d fn=%d", tp, fp, fn)
	}
	// Empty inputs.
	tp, fp, fn = MatchTruth(nil, truth, 0.5)
	if tp != 0 || fp != 0 || fn != 2 {
		t.Fatal("empty detections wrong")
	}
}

// closingScorer instruments the grid path with LevelCloser accounting: every
// level fork (original included) must be closed exactly once, serially,
// after scoring ends.
type closingScorer struct {
	stubScorer
	mu    sync.Mutex
	forks []*closingLevel
}

type closingLevel struct {
	stubLevel
	s      *closingScorer
	closes int
}

func (s *closingScorer) track(l *closingLevel) *closingLevel {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forks = append(s.forks, l)
	return l
}

func (s *closingScorer) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) LevelScorer {
	return s.track(&closingLevel{stubLevel: stubLevel{w: level.W, h: level.H}, s: s})
}

func (l *closingLevel) Fork() LevelScorer {
	return l.s.track(&closingLevel{stubLevel: l.stubLevel, s: l.s})
}

// CloseLevel runs serially per the LevelCloser contract, so the unguarded
// counter increment below is itself part of what the race detector checks.
func (l *closingLevel) CloseLevel() { l.closes++ }

func TestSweepClosesEveryLevelFork(t *testing.T) {
	img := imgproc.NewImage(128, 128)
	s := &closingScorer{}
	p := Params{Win: 32, Stride: 16, Scales: []float64{1, 2}, Workers: 3}
	_, stats, err := Sweep(context.Background(), img, s, p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PreparedLevels != 2 {
		t.Fatalf("prepared %d levels, want 2", stats.PreparedLevels)
	}
	wantForks := stats.PreparedLevels * stats.Workers
	if len(s.forks) != wantForks {
		t.Fatalf("created %d level forks, want %d", len(s.forks), wantForks)
	}
	for i, l := range s.forks {
		if l.closes != 1 {
			t.Fatalf("fork %d closed %d times, want exactly 1", i, l.closes)
		}
	}
}
