// Package detect drives sliding-window face detection at multiple scales:
// an image pyramid feeds a window classifier, detections map back to
// original coordinates, and non-maximum suppression merges overlapping
// hits. Any scoring function works — the HDFace pipeline, the HAAR
// cascade, or a test stub.
//
// The sweep engine supports two scoring contracts. A plain WindowScorer is
// handed cropped raw-pixel windows, one at a time. A GridScorer may
// additionally prepare per-level state once — an integral image, or the
// hyperspace HOG cell grid whose cell hypervectors are shared by every
// overlapping window — and score windows from it without re-extracting.
// Sweeps fan out over a worker pool; window indices are deterministic, so
// scorers that reseed from them produce byte-identical results for any
// worker count.
//
// Sweeps are resilient. They take a context.Context and check it
// cooperatively once per window batch: a cancelled or expired context stops
// the sweep promptly, drains the worker pool without leaking goroutines,
// and returns the best-so-far boxes with SweepStats.Degraded set (the
// anytime contract — levels are scored coarse-to-fine, so an expired
// deadline still leaves whole-scene coverage at the coarse scales). A
// scorer that panics is contained per window: the panic becomes a typed
// *WindowError naming the level and window instead of taking down the
// process, the window counts as a miss, and the sweep continues.
package detect

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
)

// Observability series for the sliding-window sweep: how many windows the
// pyramid produced, how many the scorer accepted, what NMS kept, how the
// sweep was parallelised and which pyramid levels never ran. They record
// nothing unless obs is enabled.
var (
	obsWindows      = obs.NewCounter("hdface_detect_windows_scanned_total", "windows scored across all pyramid levels")
	obsHits         = obs.NewCounter("hdface_detect_windows_hit_total", "windows the scorer accepted")
	obsNMSIn        = obs.NewCounter("hdface_detect_nms_input_total", "boxes entering non-maximum suppression")
	obsNMSKept      = obs.NewCounter("hdface_detect_nms_survivors_total", "boxes surviving non-maximum suppression")
	obsRunWindows   = obs.NewHistogram("hdface_detect_windows_per_run", "windows scanned per detection sweep", obs.SizeBuckets)
	obsWorkers      = obs.NewGauge("hdface_detect_workers", "effective worker count of the last detection sweep")
	obsSkipped      = obs.NewCounter("hdface_detect_levels_skipped_total", "pyramid levels skipped because the scaled image is smaller than the window")
	obsLevelWindows = obs.NewHistogram("hdface_detect_windows_per_level", "windows scanned per pyramid level", obs.SizeBuckets)
	obsCancelled    = obs.NewCounter("hdface_detect_sweeps_cancelled_total", "sweeps stopped early by context cancellation or deadline")
	obsDegraded     = obs.NewCounter("hdface_detect_degraded_returns_total", "sweeps that returned best-so-far boxes with the Degraded flag")
	obsPanics       = obs.NewCounter("hdface_detect_scorer_panics_total", "scorer panics contained as WindowErrors")
	obsSlack        = obs.NewHistogram("hdface_detect_deadline_slack_seconds", "deadline budget left when a deadlined sweep completed in time", obs.LatencyBuckets)
)

// cancelBatch is how many windows a worker scores between cooperative
// cancellation checks. Scoring one window costs microseconds, so a batch
// keeps the atomic load off the per-window fast path while still bounding
// the reaction time to a cancelled context.
const cancelBatch = 16

// maxWindowErrors caps how many contained panics a sweep retains in full;
// further panics are still counted in SweepStats.Panics but only the first
// few carry stacks, keeping a pathological scorer from hoarding memory.
const maxWindowErrors = 8

// WindowError reports a scorer panic contained by the sweep: the window
// named by level and coordinates scored as a miss, the rest of the sweep
// continued. It is returned (possibly joined with others) as the sweep
// error, alongside valid boxes and stats.
type WindowError struct {
	Level int     // index of the level in pyramid order (SweepStats.WindowsPerLevel order)
	Scale float64 // pyramid scale of the level
	X, Y  int     // window top-left corner in level coordinates
	Index int     // row-major window index within the level
	Cause any     // recovered panic value
	Stack []byte  // stack captured at the panic site
}

// Error implements error.
func (e *WindowError) Error() string {
	return fmt.Sprintf("detect: scorer panicked on window %d at (%d,%d) of level %d (scale %g): %v",
		e.Index, e.X, e.Y, e.Level, e.Scale, e.Cause)
}

// Box is one detection in original-image coordinates.
type Box struct {
	X0, Y0, X1, Y1 int
	Score          float64
	Scale          float64 // pyramid scale the hit came from
}

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	ix0, iy0 := maxInt(a.X0, b.X0), maxInt(a.Y0, b.Y0)
	ix1, iy1 := minInt(a.X1, b.X1), minInt(a.Y1, b.Y1)
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a.X1 - a.X0) * (a.Y1 - a.Y0))
	areaB := float64((b.X1 - b.X0) * (b.Y1 - b.Y0))
	union := areaA + areaB - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// WindowScorer classifies one raw-pixel window, returning whether it is a
// face and a confidence (higher = more face-like). Windows arrive at the
// sweep's window size.
type WindowScorer interface {
	ScoreWindow(win *imgproc.Image) (bool, float64)
}

// Forker is implemented by scorers whose clones may score windows on
// separate goroutines. Fork is called serially, before the sweep's
// goroutines start; returning nil vetoes parallelism (a scorer whose
// shared state cannot be cloned), clamping the sweep to one worker.
type Forker interface {
	Fork() WindowScorer
}

// LevelScorer scores windows of one prepared pyramid level.
type LevelScorer interface {
	// ScoreAt scores the window whose top-left corner is (x, y) in level
	// coordinates. idx is the window's row-major index within the level —
	// deterministic regardless of worker count or scheduling — so
	// stochastic scorers reseed from it to keep sweeps reproducible.
	ScoreAt(x, y, idx int) (bool, float64)
	// Fork returns a clone safe to run on another goroutine. Like
	// Forker.Fork it is called serially before scoring starts.
	Fork() LevelScorer
}

// LevelCloser is implemented by LevelScorers holding per-worker resources —
// scoring arenas, per-level stage spans, batched work counters — that need
// a deterministic flush once scoring ends. Sweep calls CloseLevel exactly
// once per level fork (including the original returned by PrepareLevel),
// serially, after every worker goroutine has finished; implementations may
// therefore touch shared state without synchronisation.
type LevelCloser interface {
	CloseLevel()
}

// GridScorer is implemented by scorers that can precompute per-level state
// (an integral image, the hyperspace HOG cell grid) and score windows from
// it instead of from cropped pixels.
type GridScorer interface {
	WindowScorer
	// PrepareLevel is called once per pyramid level, serially and in
	// pyramid order, before scoring starts; workers is the parallelism the
	// preparation itself may use. Returning nil falls back to per-window
	// ScoreWindow calls for that level.
	PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) LevelScorer
}

// Scorer is the legacy function contract. It adapts to WindowScorer, but a
// bare function cannot declare itself clone-safe, so sweeps over it run
// single-worker.
type Scorer func(win *imgproc.Image) (bool, float64)

// ScoreWindow implements WindowScorer.
func (s Scorer) ScoreWindow(win *imgproc.Image) (bool, float64) { return s(win) }

// Params configures a detection sweep.
type Params struct {
	// Win is the classifier's native window size (default 48).
	Win int
	// Stride is the slide step at each scale (default Win/2).
	Stride int
	// Scales are pyramid downscale factors; 1 means native resolution,
	// 2 halves the image so the effective window doubles
	// (default {1, 1.5, 2}). They are deduplicated and swept in ascending
	// order; non-positive or non-finite scales are rejected.
	Scales []float64
	// NMSIoU merges detections overlapping at least this much
	// (default 0.3); set negative to disable suppression.
	NMSIoU float64
	// Workers is the sweep parallelism (default 1). Counts above one
	// require the scorer to support cloning (Forker, or per-level scorers
	// via GridScorer); otherwise the sweep clamps to one worker.
	Workers int
}

// normalize validates p and fills defaults.
func (p Params) normalize() (Params, error) {
	if p.Win == 0 {
		p.Win = 48
	}
	if p.Win < 0 {
		return p, fmt.Errorf("detect: window size %d must be positive", p.Win)
	}
	if p.Stride == 0 {
		p.Stride = p.Win / 2
		if p.Stride == 0 {
			p.Stride = 1
		}
	}
	if p.Stride < 0 {
		return p, fmt.Errorf("detect: stride %d must be positive", p.Stride)
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	if p.Workers < 0 {
		return p, fmt.Errorf("detect: worker count %d must be positive", p.Workers)
	}
	if len(p.Scales) == 0 {
		p.Scales = []float64{1, 1.5, 2}
	} else {
		ss := append([]float64(nil), p.Scales...)
		for _, s := range ss {
			if !(s > 0) || math.IsInf(s, 1) {
				return p, fmt.Errorf("detect: scale %v must be positive and finite", s)
			}
		}
		sort.Float64s(ss)
		uniq := ss[:1]
		for _, s := range ss[1:] {
			if s != uniq[len(uniq)-1] {
				uniq = append(uniq, s)
			}
		}
		p.Scales = uniq
	}
	if p.NMSIoU == 0 {
		p.NMSIoU = 0.3
	}
	return p, nil
}

// SweepStats reports what a detection sweep did.
type SweepStats struct {
	Windows int64 // windows scored
	Hits    int64 // windows the scorer accepted
	Levels  int   // pyramid levels swept
	// SkippedLevels counts scales dropped because the scaled image was
	// smaller than the window (previously an invisible no-op).
	SkippedLevels int
	// PreparedLevels counts levels scored through a prepared LevelScorer
	// (an integral image, a cell-hypervector grid); PreparedWindows and
	// FallbackWindows split the window total accordingly.
	PreparedLevels  int
	PreparedWindows int64
	FallbackWindows int64
	Workers         int     // effective worker count after capability clamping
	WindowsPerLevel []int64 // windows per swept level, in pyramid order

	// Degraded reports that the context was cancelled (or its deadline
	// expired) before every window was scored: the returned boxes are the
	// best-so-far anytime result, not the full sweep.
	Degraded bool
	// CompletedWindows counts windows actually scored (equals Windows
	// unless Degraded); CompletedPerLevel splits it in WindowsPerLevel
	// order, showing how far down the coarse-to-fine schedule the sweep
	// got before the budget ran out.
	CompletedWindows  int64
	CompletedPerLevel []int64
	// Panics counts scorer panics contained as WindowErrors.
	Panics int64
}

// level is one materialised pyramid level.
type level struct {
	img    *imgproc.Image
	scale  float64
	nx, ny int // window lattice extent
	start  int // global index of the level's first window
	ls     LevelScorer
}

// Sweep runs the scorer over the image pyramid with p.Workers-way
// parallelism and returns suppressed detections in original coordinates,
// best score first, plus sweep statistics. Results are deterministic for a
// fixed (image, scorer state, Params) as long as the scorer keys its
// randomness on the provided window indices; the worker count never
// changes the output.
//
// ctx bounds the sweep: cancellation or an expired deadline stops scoring
// within one window batch per worker, the pool drains, and Sweep returns
// the boxes scored so far with stats.Degraded set and a nil error — the
// anytime contract. Scoring proceeds coarse-to-fine (largest pyramid scale
// first), so a blown budget degrades resolution, not scene coverage. A
// panicking scorer does not abort the sweep: each panic is contained as a
// *WindowError (joined into the returned error), the window counts as a
// miss, and all other windows are still scored. Boxes and stats are valid
// even when the returned error is non-nil.
func Sweep(ctx context.Context, img *imgproc.Image, scorer WindowScorer, p Params) ([]Box, SweepStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats SweepStats
	p, err := p.normalize()
	if err != nil {
		return nil, stats, err
	}
	sp := obs.StartSpan("detect_sweep")
	defer sp.End()
	// Per-request span tree, if the caller's context carries a trace. The
	// tracer only observes — it never touches scoring state — so output
	// stays byte-identical across worker counts with tracing on.
	_, tsp := trace.StartSpan(ctx, "detect_sweep")
	defer tsp.End()

	// Build the pyramid and per-level state serially: Resize is cheap next
	// to scoring, and PrepareLevel implementations parallelise internally.
	gs, _ := scorer.(GridScorer)
	var levels []level
	var lvSpans []*trace.Span
	total := 0
	for li, s := range p.Scales {
		w := int(float64(img.W) / s)
		h := int(float64(img.H) / s)
		if w < p.Win || h < p.Win {
			stats.SkippedLevels++
			obsSkipped.Inc()
			continue
		}
		lsp := tsp.StartSpan("level")
		lv := level{img: img, scale: s}
		if s != 1 {
			lv.img = img.Resize(w, h)
		}
		lv.nx = (lv.img.W-p.Win)/p.Stride + 1
		lv.ny = (lv.img.H-p.Win)/p.Stride + 1
		lv.start = total
		n := lv.nx * lv.ny
		total += n
		// Level preparation (an integral image, a full cell-grid
		// extraction) is the expensive part of the pyramid build; once the
		// context is dead there is no budget left to spend on it.
		if gs != nil && ctx.Err() == nil {
			lv.ls = gs.PrepareLevel(lv.img, li, p.Win, p.Workers)
		}
		if lv.ls != nil {
			stats.PreparedLevels++
			stats.PreparedWindows += int64(n)
		} else {
			stats.FallbackWindows += int64(n)
		}
		lsp.End() // the span times resize + preparation
		lsp.SetAttr("scale", fmt.Sprintf("%g", s))
		lsp.SetAttrInt("windows", int64(n))
		lsp.SetAttr("prepared", fmt.Sprintf("%t", lv.ls != nil))
		lvSpans = append(lvSpans, lsp)
		levels = append(levels, lv)
		stats.WindowsPerLevel = append(stats.WindowsPerLevel, int64(n))
		obsLevelWindows.Observe(float64(n))
	}
	stats.Levels = len(levels)
	stats.Windows = int64(total)

	workers := p.Workers
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	// Fallback levels need per-worker clones of the raw-pixel scorer; a
	// scorer that cannot provide them caps the sweep at one worker. All
	// forks are created serially, before any goroutine starts.
	needWS := false
	for _, lv := range levels {
		if lv.ls == nil {
			needWS = true
		}
	}
	var wsForks []WindowScorer
	if needWS && workers > 1 {
		if f, ok := scorer.(Forker); ok {
			wsForks = make([]WindowScorer, workers)
			wsForks[0] = scorer
			for w := 1; w < workers; w++ {
				if wsForks[w] = f.Fork(); wsForks[w] == nil {
					workers = 1
					break
				}
			}
		} else {
			workers = 1
		}
	}
	if workers == 1 {
		wsForks = []WindowScorer{scorer}
	}
	lsForks := make([][]LevelScorer, len(levels))
	for i, lv := range levels {
		if lv.ls == nil {
			continue
		}
		row := make([]LevelScorer, workers)
		row[0] = lv.ls
		for w := 1; w < workers; w++ {
			row[w] = lv.ls.Fork()
		}
		lsForks[i] = row
	}
	stats.Workers = workers
	obsWorkers.Set(float64(workers))

	// Anytime schedule: score levels coarse-to-fine (largest scale, i.e.
	// fewest windows, first). Assembly below still walks levels in pyramid
	// order, so a completed sweep is byte-identical to the historical
	// fine-first order; only what survives a blown budget changes.
	order := make([]int, len(levels))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return levels[order[a]].scale > levels[order[b]].scale
	})

	// Cooperative cancellation: a watcher translates ctx.Done into an
	// atomic flag the workers poll once per cancelBatch windows, keeping
	// the fast path free of mutex-guarded ctx.Err calls. The watcher is
	// released as soon as scoring ends, so nothing leaks.
	var stop atomic.Bool
	if ctx.Err() != nil {
		stop.Store(true)
	}
	watchDone := make(chan struct{})
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	// Score every window. Worker w owns the windows whose in-level index
	// is congruent to w, and writes results by global index, so output
	// assembly is independent of scheduling.
	type result struct {
		hit   bool
		score float64
	}
	results := make([]result, total)
	completed := make([]int64, len(levels)) // scored windows per level, atomic
	var panics int64
	var errMu sync.Mutex
	var werrs []error
	var wg sync.WaitGroup
	scoreStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, i := range order {
				lv := &levels[i]
				var ls LevelScorer
				var ws WindowScorer
				if lsForks[i] != nil {
					ls = lsForks[i][w]
				} else {
					ws = wsForks[w]
				}
				n := lv.nx * lv.ny
				done := int64(0)
				for idx := w; idx < n; idx += workers {
					if done%cancelBatch == 0 && stop.Load() {
						break
					}
					x := idx % lv.nx * p.Stride
					y := idx / lv.nx * p.Stride
					hit, conf, werr := scoreOne(ls, ws, lv, i, x, y, idx, p.Win)
					if werr != nil {
						atomic.AddInt64(&panics, 1)
						obsPanics.Inc()
						errMu.Lock()
						if len(werrs) < maxWindowErrors {
							werrs = append(werrs, werr)
						}
						errMu.Unlock()
					}
					results[lv.start+idx] = result{hit, conf}
					done++
				}
				atomic.AddInt64(&completed[i], done)
				if stop.Load() {
					// Drain the remaining levels' counters untouched; the
					// per-level completion stats show where the budget died.
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(watchDone)

	// All workers are done: flush per-fork level resources (arena-backed
	// scorers batch their work accounting and per-level spans behind this).
	for _, row := range lsForks {
		for _, ls := range row {
			if c, ok := ls.(LevelCloser); ok {
				c.CloseLevel()
			}
		}
	}

	stats.Panics = panics
	stats.CompletedPerLevel = completed
	for _, c := range completed {
		stats.CompletedWindows += c
	}
	stats.Degraded = stats.CompletedWindows < stats.Windows
	if ctx.Err() != nil {
		obsCancelled.Inc()
	}
	if stats.Degraded {
		obsDegraded.Inc()
	} else if dl, ok := ctx.Deadline(); ok {
		obsSlack.Observe(time.Until(dl).Seconds())
	}

	// Trace annotations: the parallel scoring region as one span, per-level
	// completion counts on the level spans (timing per level is undefined
	// under work-stealing, so levels carry counts, not scoring time), and
	// the degraded/panic verdict on the sweep span and the trace itself.
	if tsp != nil {
		ssp := tsp.AddSpan("score", scoreStart, time.Now())
		ssp.SetAttrInt("workers", int64(workers))
		ssp.SetAttrInt("completed", stats.CompletedWindows)
		for i, lsp := range lvSpans {
			lsp.SetAttrInt("completed", completed[i])
		}
		if panics > 0 {
			ssp.SetAttrInt("panics", panics)
			tsp.SetAttr("panic", "true")
			trace.FromContext(ctx).SetError(true)
		}
		if stats.Degraded {
			tsp.SetAttr("degraded", "true")
			trace.FromContext(ctx).SetDegraded(true)
		}
	}

	var raw []Box
	for _, lv := range levels {
		n := lv.nx * lv.ny
		for idx := 0; idx < n; idx++ {
			r := results[lv.start+idx]
			if !r.hit {
				continue
			}
			x := idx % lv.nx * p.Stride
			y := idx / lv.nx * p.Stride
			raw = append(raw, Box{
				X0:    int(float64(x) * lv.scale),
				Y0:    int(float64(y) * lv.scale),
				X1:    int(math.Ceil(float64(x+p.Win) * lv.scale)),
				Y1:    int(math.Ceil(float64(y+p.Win) * lv.scale)),
				Score: r.score,
				Scale: lv.scale,
			})
		}
	}
	stats.Hits = int64(len(raw))
	obsWindows.Add(stats.CompletedWindows)
	obsHits.Add(stats.Hits)
	obsRunWindows.Observe(float64(stats.CompletedWindows))
	sp.AddItems(stats.CompletedWindows)
	err = errors.Join(werrs...)
	if p.NMSIoU < 0 {
		sortBoxes(raw)
		return raw, stats, err
	}
	return NMS(raw, p.NMSIoU), stats, err
}

// scoreOne scores a single window, converting a scorer panic into a typed
// *WindowError so one bad window cannot take down the sweep. The panicked
// window reports as a miss.
func scoreOne(ls LevelScorer, ws WindowScorer, lv *level, li, x, y, idx, win int) (hit bool, conf float64, werr *WindowError) {
	defer func() {
		if r := recover(); r != nil {
			hit, conf = false, 0
			werr = &WindowError{
				Level: li, Scale: lv.scale, X: x, Y: y, Index: idx,
				Cause: r, Stack: debug.Stack(),
			}
		}
	}()
	if ls != nil {
		hit, conf = ls.ScoreAt(x, y, idx)
		return
	}
	hit, conf = ws.ScoreWindow(lv.img.Crop(x, y, win, win))
	return
}

// Run sweeps the scorer over the image pyramid single-worker and returns
// suppressed detections in original coordinates, best score first. It is
// the legacy entry point kept for function scorers; use Sweep for
// contexts, parallelism and statistics.
func Run(img *imgproc.Image, score Scorer, p Params) ([]Box, error) {
	boxes, _, err := Sweep(context.Background(), img, score, p)
	return boxes, err
}

// sortBoxes orders boxes deterministically: score descending, then area
// descending, then X0 and Y0 ascending. The tie-break keeps equal-score
// detections from reordering across runs and worker counts.
func sortBoxes(boxes []Box) {
	sort.SliceStable(boxes, func(i, j int) bool {
		a, b := boxes[i], boxes[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		areaA := (a.X1 - a.X0) * (a.Y1 - a.Y0)
		areaB := (b.X1 - b.X0) * (b.Y1 - b.Y0)
		if areaA != areaB {
			return areaA > areaB
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		return a.Y0 < b.Y0
	})
}

// NMS performs greedy non-maximum suppression: detections are taken in
// descending score order (ties broken by area, then position, so the
// outcome is deterministic); any remaining box overlapping a kept box by
// at least iou is dropped.
func NMS(boxes []Box, iou float64) []Box {
	obsNMSIn.Add(int64(len(boxes)))
	sorted := append([]Box(nil), boxes...)
	sortBoxes(sorted)
	var kept []Box
	for _, b := range sorted {
		suppressed := false
		for _, k := range kept {
			if IoU(b, k) >= iou {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, b)
		}
	}
	obsNMSKept.Add(int64(len(kept)))
	return kept
}

// MatchTruth greedily matches detections to ground-truth boxes at the
// given IoU threshold, returning (truePositives, falsePositives,
// falseNegatives) — the counts detection metrics build on.
func MatchTruth(dets []Box, truth [][4]int, iou float64) (tp, fp, fn int) {
	used := make([]bool, len(truth))
	sorted := append([]Box(nil), dets...)
	sortBoxes(sorted)
	for _, d := range sorted {
		matched := false
		for t, box := range truth {
			if used[t] {
				continue
			}
			gt := Box{X0: box[0], Y0: box[1], X1: box[2], Y1: box[3]}
			if IoU(d, gt) >= iou {
				used[t] = true
				matched = true
				break
			}
		}
		if matched {
			tp++
		} else {
			fp++
		}
	}
	for _, u := range used {
		if !u {
			fn++
		}
	}
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
