// Package detect drives sliding-window face detection at multiple scales:
// an image pyramid feeds a window classifier, detections map back to
// original coordinates, and non-maximum suppression merges overlapping
// hits. Any scoring function works — the HDFace pipeline, the HAAR
// cascade, or a test stub.
package detect

import (
	"math"
	"sort"

	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// Observability series for the sliding-window sweep: how many windows the
// pyramid produced, how many the scorer accepted, and what NMS kept. They
// record nothing unless obs is enabled.
var (
	obsWindows    = obs.NewCounter("hdface_detect_windows_scanned_total", "windows scored across all pyramid levels")
	obsHits       = obs.NewCounter("hdface_detect_windows_hit_total", "windows the scorer accepted")
	obsNMSIn      = obs.NewCounter("hdface_detect_nms_input_total", "boxes entering non-maximum suppression")
	obsNMSKept    = obs.NewCounter("hdface_detect_nms_survivors_total", "boxes surviving non-maximum suppression")
	obsRunWindows = obs.NewHistogram("hdface_detect_windows_per_run", "windows scanned per detection sweep", obs.SizeBuckets)
)

// Box is one detection in original-image coordinates.
type Box struct {
	X0, Y0, X1, Y1 int
	Score          float64
	Scale          float64 // pyramid scale the hit came from
}

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	ix0, iy0 := maxInt(a.X0, b.X0), maxInt(a.Y0, b.Y0)
	ix1, iy1 := minInt(a.X1, b.X1), minInt(a.Y1, b.Y1)
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	areaA := float64((a.X1 - a.X0) * (a.Y1 - a.Y0))
	areaB := float64((b.X1 - b.X0) * (b.Y1 - b.Y0))
	union := areaA + areaB - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Scorer classifies one window, returning whether it is a face and a
// confidence (higher = more face-like). Windows arrive at the detector's
// native window size.
type Scorer func(win *imgproc.Image) (bool, float64)

// Params configures a detection sweep.
type Params struct {
	// Win is the classifier's native window size (default 48).
	Win int
	// Stride is the slide step at each scale (default Win/2).
	Stride int
	// Scales are pyramid downscale factors; 1 means native resolution,
	// 2 halves the image so the effective window doubles
	// (default {1, 1.5, 2}).
	Scales []float64
	// NMSIoU merges detections overlapping at least this much
	// (default 0.3); set negative to disable suppression.
	NMSIoU float64
}

func (p Params) withDefaults() Params {
	if p.Win == 0 {
		p.Win = 48
	}
	if p.Stride == 0 {
		p.Stride = p.Win / 2
	}
	if len(p.Scales) == 0 {
		p.Scales = []float64{1, 1.5, 2}
	}
	if p.NMSIoU == 0 {
		p.NMSIoU = 0.3
	}
	return p
}

// Run sweeps the scorer over the image pyramid and returns suppressed
// detections in original coordinates, best score first.
func Run(img *imgproc.Image, score Scorer, p Params) []Box {
	p = p.withDefaults()
	sp := obs.StartSpan("detect_sweep")
	defer sp.End()
	var windows int64
	var raw []Box
	for _, s := range p.Scales {
		if s <= 0 {
			continue
		}
		w := int(float64(img.W) / s)
		h := int(float64(img.H) / s)
		if w < p.Win || h < p.Win {
			continue
		}
		level := img
		if s != 1 {
			level = img.Resize(w, h)
		}
		for y := 0; y+p.Win <= level.H; y += p.Stride {
			for x := 0; x+p.Win <= level.W; x += p.Stride {
				windows++
				hit, conf := score(level.Crop(x, y, p.Win, p.Win))
				if !hit {
					continue
				}
				obsHits.Inc()
				raw = append(raw, Box{
					X0:    int(float64(x) * s),
					Y0:    int(float64(y) * s),
					X1:    int(math.Ceil(float64(x+p.Win) * s)),
					Y1:    int(math.Ceil(float64(y+p.Win) * s)),
					Score: conf,
					Scale: s,
				})
			}
		}
	}
	obsWindows.Add(windows)
	obsRunWindows.Observe(float64(windows))
	sp.AddItems(windows)
	if p.NMSIoU < 0 {
		sort.Slice(raw, func(i, j int) bool { return raw[i].Score > raw[j].Score })
		return raw
	}
	return NMS(raw, p.NMSIoU)
}

// NMS performs greedy non-maximum suppression: detections are taken in
// descending score order; any remaining box overlapping a kept box by at
// least iou is dropped.
func NMS(boxes []Box, iou float64) []Box {
	obsNMSIn.Add(int64(len(boxes)))
	sorted := append([]Box(nil), boxes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []Box
	for _, b := range sorted {
		suppressed := false
		for _, k := range kept {
			if IoU(b, k) >= iou {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, b)
		}
	}
	obsNMSKept.Add(int64(len(kept)))
	return kept
}

// MatchTruth greedily matches detections to ground-truth boxes at the
// given IoU threshold, returning (truePositives, falsePositives,
// falseNegatives) — the counts detection metrics build on.
func MatchTruth(dets []Box, truth [][4]int, iou float64) (tp, fp, fn int) {
	used := make([]bool, len(truth))
	sorted := append([]Box(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	for _, d := range sorted {
		matched := false
		for t, box := range truth {
			if used[t] {
				continue
			}
			gt := Box{X0: box[0], Y0: box[1], X1: box[2], Y1: box[3]}
			if IoU(d, gt) >= iou {
				used[t] = true
				matched = true
				break
			}
		}
		if matched {
			tp++
		} else {
			fp++
		}
	}
	for _, u := range used {
		if !u {
			fn++
		}
	}
	return
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
