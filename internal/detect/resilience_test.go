package detect

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hdface/internal/imgproc"
)

// texturedImage returns a 256x256 image with banded texture so window hashes
// differ — big enough that every level has far more windows than cancelBatch.
func texturedImage() *imgproc.Image {
	img := imgproc.NewImage(256, 256)
	for y := 0; y < img.H; y += 4 {
		img.FillRect(0, y, img.W, y+2, uint8(y))
	}
	return img
}

var resilienceParams = Params{Win: 32, Stride: 16, Scales: []float64{1, 1.5, 2}, NMSIoU: -1}

func TestSweepPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	boxes, stats, err := Sweep(ctx, texturedImage(), &stubScorer{}, resilienceParams)
	if err != nil {
		t.Fatalf("anytime contract broken: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled sweep took %v", elapsed)
	}
	if !stats.Degraded {
		t.Fatalf("pre-cancelled sweep not degraded: %+v", stats)
	}
	if stats.CompletedWindows != 0 || len(boxes) != 0 {
		t.Fatalf("pre-cancelled sweep scored windows: %d completed, %d boxes",
			stats.CompletedWindows, len(boxes))
	}
	// The window inventory is still reported so callers can see what was
	// missed.
	if stats.Windows == 0 || stats.Levels != 3 {
		t.Fatalf("stats should still describe the pyramid: %+v", stats)
	}
}

func TestSweepCancelledMidSweepIsCoarseFirst(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var scored int64
	s := Scorer(func(win *imgproc.Image) (bool, float64) {
		if n := atomic.AddInt64(&scored, 1); n == 5 {
			cancel()
		} else if n > 5 {
			// Slow down once cancelled so the watcher goroutine reliably
			// flags the stop before the next batch-boundary check.
			time.Sleep(time.Millisecond)
		}
		return true, win.Mean()
	})
	boxes, stats, err := Sweep(ctx, texturedImage(), s, resilienceParams)
	if err != nil {
		t.Fatalf("anytime contract broken: %v", err)
	}
	if !stats.Degraded {
		t.Fatalf("mid-sweep cancel not degraded: %+v", stats)
	}
	if stats.CompletedWindows == 0 || stats.CompletedWindows >= stats.Windows {
		t.Fatalf("expected a partial sweep: %d/%d windows",
			stats.CompletedWindows, stats.Windows)
	}
	// Cancellation is polled once per cancelBatch windows on one worker, so
	// the overshoot past the cancel point is bounded by one batch.
	if stats.CompletedWindows > 5+cancelBatch {
		t.Fatalf("cancellation reacted too slowly: %d windows after cancel at 5",
			stats.CompletedWindows)
	}
	// Coarse-to-fine schedule: the budget died in the coarsest level
	// (pyramid order puts it last), so the fine levels never started.
	if got := stats.CompletedPerLevel; len(got) != 3 || got[2] == 0 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("schedule not coarse-first: completed per level %v", got)
	}
	for _, b := range boxes {
		if b.Scale != 2 {
			t.Fatalf("best-so-far box from unscored level: %+v", b)
		}
	}
	if int64(len(boxes)) != stats.CompletedWindows {
		t.Fatalf("every scored window hits, so %d boxes != %d completed",
			len(boxes), stats.CompletedWindows)
	}
}

// slowLevel sleeps per window so a deadline expires mid-sweep.
type slowLevel struct {
	w, h  int
	delay time.Duration
}

func (l *slowLevel) ScoreAt(x, y, idx int) (bool, float64) {
	time.Sleep(l.delay)
	return stubScore(l.w, l.h, idx)
}
func (l *slowLevel) Fork() LevelScorer { return l }

type slowScorer struct {
	stubScorer
	delay time.Duration
}

func (s *slowScorer) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) LevelScorer {
	return &slowLevel{w: level.W, h: level.H, delay: s.delay}
}

func TestSweepDeadlineReturnsBestSoFar(t *testing.T) {
	// 655 windows at 1ms each would take >600ms; the 20ms budget must blow.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	boxes, stats, err := Sweep(ctx, texturedImage(), &slowScorer{delay: time.Millisecond}, resilienceParams)
	if err != nil {
		t.Fatalf("anytime contract broken: %v", err)
	}
	if !stats.Degraded {
		t.Fatalf("blown deadline not degraded: %+v", stats)
	}
	if stats.CompletedWindows == 0 {
		t.Fatal("deadline sweep scored nothing; budget too tight for the test")
	}
	if stats.CompletedWindows >= stats.Windows {
		t.Fatalf("sweep finished under a deadline it should blow: %+v", stats)
	}
	// The boxes that did come back are a prefix of the undegraded sweep's
	// raw hits (coarse levels first), not garbage.
	full, _, err := Sweep(context.Background(), texturedImage(), &slowScorer{delay: 0}, resilienceParams)
	if err != nil {
		t.Fatal(err)
	}
	fullSet := make(map[Box]bool, len(full))
	for _, b := range full {
		fullSet[b] = true
	}
	for _, b := range boxes {
		if !fullSet[b] {
			t.Fatalf("degraded sweep invented box %+v", b)
		}
	}
}

// panicLevel panics on one specific window of the native-scale level.
type panicLevel struct {
	w, h     int
	panicIdx int
}

func (l *panicLevel) ScoreAt(x, y, idx int) (bool, float64) {
	if idx == l.panicIdx {
		panic("scorer bug: corrupt cell grid")
	}
	return stubScore(l.w, l.h, idx)
}
func (l *panicLevel) Fork() LevelScorer { return l }

type panicScorer struct {
	stubScorer
	panicIdx int
}

func (s *panicScorer) PrepareLevel(level *imgproc.Image, levelIdx, win, workers int) LevelScorer {
	if levelIdx == 0 {
		return &panicLevel{w: level.W, h: level.H, panicIdx: s.panicIdx}
	}
	return &stubLevel{w: level.W, h: level.H}
}

func TestSweepContainsScorerPanic(t *testing.T) {
	img := texturedImage()
	const panicIdx = 7
	ref, refStats, refErr := Sweep(context.Background(), img, &panicScorer{panicIdx: panicIdx}, resilienceParams)
	if refErr == nil {
		t.Fatal("panic did not surface as an error")
	}
	var we *WindowError
	if !errors.As(refErr, &we) {
		t.Fatalf("error is not a *WindowError: %v", refErr)
	}
	if we.Index != panicIdx || we.Level != 0 || we.Scale != 1 {
		t.Fatalf("WindowError names the wrong window: %+v", we)
	}
	wantX, wantY := panicIdx%15*16, panicIdx/15*16
	if we.X != wantX || we.Y != wantY {
		t.Fatalf("WindowError at (%d,%d), want (%d,%d)", we.X, we.Y, wantX, wantY)
	}
	if len(we.Stack) == 0 {
		t.Fatal("WindowError lost the panic stack")
	}
	if refStats.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", refStats.Panics)
	}
	// A contained panic is not degradation: every other window was scored.
	if refStats.Degraded || refStats.CompletedWindows != refStats.Windows {
		t.Fatalf("panic degraded the sweep: %+v", refStats)
	}
	// The panicked window is a deterministic miss, so output stays
	// byte-identical across worker counts.
	for _, workers := range []int{2, 4} {
		p := resilienceParams
		p.Workers = workers
		got, stats, err := Sweep(context.Background(), img, &panicScorer{panicIdx: panicIdx}, p)
		if err == nil || stats.Panics != 1 {
			t.Fatalf("%d workers: panic vanished (err=%v, panics=%d)", workers, err, stats.Panics)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d workers changed panic-path output:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

func TestSweepCapsRetainedPanics(t *testing.T) {
	// Every window panics: all are counted, but only maxWindowErrors carry
	// stacks in the joined error.
	s := Scorer(func(win *imgproc.Image) (bool, float64) { panic("always") })
	boxes, stats, err := Sweep(context.Background(), texturedImage(), s,
		Params{Win: 32, Stride: 16, Scales: []float64{2}, NMSIoU: -1})
	if err == nil {
		t.Fatal("no error from an always-panicking scorer")
	}
	if len(boxes) != 0 {
		t.Fatalf("panicked windows produced boxes: %+v", boxes)
	}
	if stats.Panics != stats.Windows || stats.Panics <= maxWindowErrors {
		t.Fatalf("panics=%d windows=%d (need > %d for this test)",
			stats.Panics, stats.Windows, maxWindowErrors)
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("expected a joined error, got %T", err)
	}
	if n := len(joined.Unwrap()); n != maxWindowErrors {
		t.Fatalf("retained %d WindowErrors, want cap %d", n, maxWindowErrors)
	}
}

func TestSweepDrainsGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		p := resilienceParams
		p.Workers = 4
		if _, stats, err := Sweep(ctx, texturedImage(), &slowScorer{delay: time.Millisecond}, p); err != nil || !stats.Degraded {
			cancel()
			t.Fatalf("iteration %d: err=%v degraded=%v", i, err, stats.Degraded)
		}
		cancel()
	}
	// Workers and the cancellation watcher must all be gone; allow the
	// runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
