package detect

import (
	"context"
	"reflect"
	"testing"

	"hdface/internal/imgproc"
	"hdface/internal/obs/trace"
)

// TestSweepByteIdenticalWithTracing pins the tracer's core promise: spans
// only observe, so detection output is byte-identical to an untraced
// sweep at every worker count, with tracing enabled and a trace in the
// context.
func TestSweepByteIdenticalWithTracing(t *testing.T) {
	img := imgproc.NewImage(256, 256)
	for y := 0; y < img.H; y += 4 {
		img.FillRect(0, y, img.W, y+2, uint8(y))
	}
	base := Params{Win: 32, Stride: 16, Scales: []float64{1, 1.5, 2}, NMSIoU: -1}

	// Untraced single-worker reference.
	trace.Disable()
	ref, refStats, err := Sweep(context.Background(), img, &stubScorer{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Hits == 0 {
		t.Fatal("stub produced no hits; test is vacuous")
	}

	trace.Enable()
	defer func() {
		trace.Disable()
		trace.Reset()
	}()
	for _, workers := range []int{1, 2, 3, 8} {
		p := base
		p.Workers = workers
		tr := trace.New("detect", "")
		ctx := trace.NewContext(context.Background(), tr)
		got, _, err := Sweep(ctx, img, &stubScorer{}, p)
		tr.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("tracing with %d workers changed output:\n got %+v\nwant %+v", workers, got, ref)
		}
	}

	// The traced sweep recorded a span tree: detect_sweep with one child
	// per swept level plus the scoring region.
	exp := trace.Snapshot(trace.Filter{Kind: "detect", Stage: "detect_sweep", Limit: 1})
	if len(exp.Traces) != 1 {
		t.Fatalf("no detect_sweep trace collected")
	}
	var sweep *trace.ExportSpan
	for i := range exp.Traces[0].Spans {
		if exp.Traces[0].Spans[i].Name == "detect_sweep" {
			sweep = &exp.Traces[0].Spans[i]
		}
	}
	if sweep == nil {
		t.Fatalf("trace has no detect_sweep span: %+v", exp.Traces[0].Spans)
	}
	levels, scores := 0, 0
	for _, c := range sweep.Children {
		switch c.Name {
		case "level":
			levels++
			if c.Attrs["windows"] == "" || c.Attrs["completed"] == "" {
				t.Fatalf("level span missing window counts: %+v", c)
			}
		case "score":
			scores++
		}
	}
	if levels != refStats.Levels || scores != 1 {
		t.Fatalf("span tree has %d level spans and %d score spans, want %d and 1",
			levels, scores, refStats.Levels)
	}
}
