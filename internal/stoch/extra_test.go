package stoch

import (
	"math"
	"testing"
	"testing/quick"

	"hdface/internal/hv"
)

func TestMaxMin(t *testing.T) {
	c := NewCodec(8192, 51)
	a, b := c.Construct(0.7), c.Construct(0.1)
	if got := c.Decode(c.Max(a, b)); math.Abs(got-0.7) > 0.05 {
		t.Fatalf("max = %v", got)
	}
	if got := c.Decode(c.Min(a, b)); math.Abs(got-0.1) > 0.05 {
		t.Fatalf("min = %v", got)
	}
	// Symmetric arguments.
	if got := c.Decode(c.Max(b, a)); math.Abs(got-0.7) > 0.05 {
		t.Fatalf("max swapped = %v", got)
	}
}

func TestClamp(t *testing.T) {
	c := NewCodec(8192, 52)
	if got := c.Decode(c.Clamp(c.Construct(0.9), -0.5, 0.5)); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("clamp high = %v", got)
	}
	if got := c.Decode(c.Clamp(c.Construct(-0.9), -0.5, 0.5)); math.Abs(got+0.5) > 0.05 {
		t.Fatalf("clamp low = %v", got)
	}
	v := c.Construct(0.2)
	if !c.Clamp(v, -0.5, 0.5).Equal(v) {
		t.Fatal("in-range clamp must return the value unchanged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted bounds did not panic")
		}
	}()
	c.Clamp(v, 1, -1)
}

func TestLerp(t *testing.T) {
	c := NewCodec(8192, 53)
	a, b := c.Construct(-0.6), c.Construct(0.8)
	for _, tt := range []float64{0, 0.25, 0.5, 1} {
		got := c.Decode(c.Lerp(a, b, tt))
		want := -0.6 + tt*(0.8-(-0.6))
		if math.Abs(got-want) > 0.06 {
			t.Fatalf("lerp(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestPow(t *testing.T) {
	c := NewCodec(16384, 54)
	v := c.Construct(0.8)
	for n := 1; n <= 4; n++ {
		got := c.Decode(c.Pow(v, n))
		want := math.Pow(0.8, float64(n))
		if math.Abs(got-want) > 0.08 {
			t.Fatalf("pow %d = %v, want %v", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(0) did not panic")
		}
	}()
	c.Pow(v, 0)
}

func TestPoly(t *testing.T) {
	c := NewCodec(16384, 55)
	// p(x) = 0.5 + 0.5x - 0.25x^2 at x = 0.6 -> 0.5 + 0.3 - 0.09 = 0.71.
	x := c.Construct(0.6)
	v, scale := c.Poly(x, []float64{0.5, 0.5, -0.25})
	if scale != 3 {
		t.Fatalf("scale %v, want 3", scale)
	}
	got := c.Decode(v) * scale
	if math.Abs(got-0.71) > 0.15 {
		t.Fatalf("poly = %v, want 0.71", got)
	}
}

func TestPolyValidation(t *testing.T) {
	c := NewCodec(256, 56)
	x := c.Construct(0)
	for name, f := range map[string]func(){
		"empty":    func() { c.Poly(x, nil) },
		"oversize": func() { c.Poly(x, []float64{2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAbsDiff(t *testing.T) {
	c := NewCodec(8192, 57)
	a, b := c.Construct(0.3), c.Construct(-0.5)
	got := c.Decode(c.AbsDiff(a, b))
	if math.Abs(got-0.4) > 0.05 {
		t.Fatalf("absdiff = %v, want 0.4", got)
	}
}

func TestMeanAbsDev(t *testing.T) {
	c := NewCodec(16384, 58)
	vals := []float64{0.2, 0.4, 0.6, 0.8}
	mean := c.Construct(0.5)
	vs := make([]*hv.Vector, len(vals))
	var want float64
	for i, a := range vals {
		vs[i] = c.Construct(a)
		want += math.Abs(a-0.5) / 2 / float64(len(vals))
	}
	got := c.Decode(c.MeanAbsDev(vs, mean))
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("mad = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty MeanAbsDev did not panic")
		}
	}()
	c.MeanAbsDev(nil, mean)
}

// Property: Max(a,b) >= both decoded inputs within tolerance.
func TestMaxDominatesProperty(t *testing.T) {
	c := NewCodec(8192, 59)
	tol := 8 / math.Sqrt(8192.0)
	f := func(x, y uint8) bool {
		a := float64(x)/255*2 - 1
		b := float64(y)/255*2 - 1
		m := c.Decode(c.Max(c.Construct(a), c.Construct(b)))
		return m >= a-tol && m >= b-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
