// Package stoch implements HDFace's stochastic arithmetic over binary
// hypervectors (paper Section 4): real numbers in [-1, 1] are represented as
// D-dimensional binary hypervectors and processed with word-parallel bitwise
// kernels.
//
// # Representation
//
// Fix a random basis hypervector V1 ("the number 1"). A hypervector Va
// represents the number a when the similarity delta(Va, V1) = a, where
// delta(x, y) = x.y / D is the normalised +-1 dot product. Equivalently, Va
// differs from V1 on a flip mask M with bit density q = (1-a)/2:
//
//	Va = V1 ^ M,  density(M) = (1 - a) / 2,  a = 1 - 2*density(M).
//
// The representation V_{-a} = -Va (bitwise NOT) follows, since negation
// complements the flip mask.
//
// # Operations
//
// Construction (paper "Construction"): Va = ((a+1)/2) V1 (+) ((1-a)/2)(-V1),
// realised by selecting each component from V1 with probability (1+a)/2 and
// from -V1 otherwise, using a fresh Bernoulli mask.
//
// Weighted average (+): C = p*Va (+) q*Vb with p + q = 1 picks each
// component from Va with probability p, else from Vb. Its decoded value is
// p*a + q*b. Addition and subtraction are the p = q = 0.5 cases, yielding
// (a+b)/2 and (a-b)/2 — stochastic arithmetic is scaled arithmetic, exactly
// as in classical stochastic computing.
//
// Multiplication (x): the paper sets dimension i of Vab to V1[i] when
// Va[i] == Vb[i] and to -V1[i] otherwise. In packed form this is a pure
// three-way XOR:
//
//	Vab = V1 ^ Va ^ Vb
//
// because XOR with (Va ^ Vb) flips V1 exactly where the operands disagree.
// When Va and Vb carry conditionally independent flip masks of densities
// qa, qb, the product mask density is qa(1-qb) + qb(1-qa) and the decoded
// value is (1-2qa)(1-2qb) = a*b.
//
// # Decorrelation
//
// The multiplication identity requires independent operand masks. Squaring
// a vector with itself would give V1 ^ Va ^ Va = V1, i.e. the number 1 — the
// same correlation artefact classical stochastic computing hits when a
// bitstream is multiplied by itself, and which it solves by re-sampling or
// delaying one stream. The hyperdimensional analogue implemented here is
// mask rotation:
//
//	Decorrelate(Va) = V1 ^ rho_k(Va ^ V1)
//
// where rho_k is a k-step circular shift. Rotating the flip mask preserves
// its popcount — so the decoded value is preserved exactly, not just in
// expectation — while pairwise decorrelating the bits. Square, divide and
// the magnitude step of the hyperspace HOG all decorrelate reused operands.
//
// # Division and square root
//
// Both are binary searches driven entirely by hypervector comparisons
// (paper Section 4.2): maintain Vlow, Vhigh, form the midpoint with a 0.5
// weighted average, square (or multiply by the divisor) and compare against
// the target. Compare decodes the sign of the difference vector
// 0.5*Va (+) 0.5*(-Vb) with a statistical margin of a few standard
// deviations of the D-bit estimator (sigma ~ 1/sqrt(D)).
//
// # Error behaviour
//
// Every operation's decoded value is a binomial estimator with standard
// deviation O(1/sqrt(D)); relative error therefore shrinks with
// dimensionality, which is what Figure 2 of the paper (and the fig2
// experiment in this repo) measures.
package stoch
