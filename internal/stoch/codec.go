package stoch

import (
	"fmt"
	"math"

	"hdface/internal/hv"
	"hdface/internal/obs"
)

// Per-primitive observability counters, mirroring the Stats fields so the
// cost of stochastic arithmetic is attributable per primitive across all
// live codecs (Stats is per-codec and harvested; these are process-global
// and live). They record nothing unless obs is enabled.
var (
	obsConstructs = obs.NewCounter(`hdface_stoch_ops_total{op="construct"}`, "stochastic value constructions")
	obsAverages   = obs.NewCounter(`hdface_stoch_ops_total{op="avg"}`, "stochastic weighted averages (incl. add/sub)")
	obsMuls       = obs.NewCounter(`hdface_stoch_ops_total{op="mul"}`, "stochastic multiplications")
	obsSqrts      = obs.NewCounter(`hdface_stoch_ops_total{op="sqrt"}`, "stochastic square roots")
	obsDivs       = obs.NewCounter(`hdface_stoch_ops_total{op="div"}`, "stochastic divisions")
	obsCompares   = obs.NewCounter(`hdface_stoch_ops_total{op="compare"}`, "stochastic comparisons")
	obsDecodes    = obs.NewCounter(`hdface_stoch_ops_total{op="decode"}`, "hypervector decodes")
	obsDecorrs    = obs.NewCounter(`hdface_stoch_ops_total{op="decorr"}`, "decorrelations")
	obsWords      = obs.NewCounter("hdface_stoch_kernel_words_total", "64-bit words through bitwise kernels")
)

// Stats counts the primitive operations a Codec has executed. The hardware
// simulator converts these counts into cycle and energy estimates, so every
// arithmetic entry point increments its counter and the word-level fields
// record the true data volume processed.
type Stats struct {
	Constructs int64 // full Bernoulli constructions
	Averages   int64 // weighted averages (incl. add/sub)
	Muls       int64
	Sqrts      int64
	Divs       int64
	Compares   int64
	Decodes    int64
	Decorrs    int64

	XorWords    int64 // words through XOR kernels
	SelectWords int64 // words through select kernels
	MaskWords   int64 // random words drawn for Bernoulli masks
	PopWords    int64 // words through popcount (similarity)
	PermWords   int64 // words through permutation
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Constructs += o.Constructs
	s.Averages += o.Averages
	s.Muls += o.Muls
	s.Sqrts += o.Sqrts
	s.Divs += o.Divs
	s.Compares += o.Compares
	s.Decodes += o.Decodes
	s.Decorrs += o.Decorrs
	s.XorWords += o.XorWords
	s.SelectWords += o.SelectWords
	s.MaskWords += o.MaskWords
	s.PopWords += o.PopWords
	s.PermWords += o.PermWords
}

// TotalWords returns all words processed by bitwise kernels.
func (s *Stats) TotalWords() int64 {
	return s.XorWords + s.SelectWords + s.MaskWords + s.PopWords + s.PermWords
}

// Codec constructs, combines and decodes stochastic hypervector numbers
// against a fixed random basis V1. It is not safe for concurrent use; derive
// per-goroutine codecs with Fork.
type Codec struct {
	d        int
	rng      *hv.RNG
	one      *hv.Vector // V_1
	minusOne *hv.Vector // V_-1 = ^V_1
	margin   float64    // comparison margin in value units
	sqrtIter int
	divIter  int
	permStep int // rotation stride for decorrelation, coprime-ish with D

	Stats Stats

	// scratch buffers to keep the hot path allocation-free
	mask, tmpA, tmpB *hv.Vector
}

// Option configures a Codec.
type Option func(*Codec)

// WithMargin sets the comparison margin in multiples of the estimator
// standard deviation 1/sqrt(D). Default 2.
func WithMargin(sigmas float64) Option {
	return func(c *Codec) { c.margin = sigmas / math.Sqrt(float64(c.d)) }
}

// WithSqrtIterations sets the binary-search depth for Sqrt (default 10).
func WithSqrtIterations(n int) Option {
	return func(c *Codec) { c.sqrtIter = n }
}

// WithDivIterations sets the binary-search depth for Div (default 10).
func WithDivIterations(n int) Option {
	return func(c *Codec) { c.divIter = n }
}

// NewCodec returns a codec of dimensionality d seeded by seed.
func NewCodec(d int, seed uint64, opts ...Option) *Codec {
	if d <= 0 {
		panic("stoch: dimensionality must be positive")
	}
	rng := hv.NewRNG(seed)
	c := &Codec{
		d:        d,
		rng:      rng,
		one:      hv.NewRand(rng, d),
		margin:   2 / math.Sqrt(float64(d)),
		sqrtIter: 10,
		divIter:  10,
		permStep: 0,
		mask:     hv.New(d),
		tmpA:     hv.New(d),
		tmpB:     hv.New(d),
	}
	c.minusOne = c.one.Neg()
	// A stride that is odd and far from 0 and D/2 decorrelates quickly.
	c.permStep = d/3 | 1
	for _, o := range opts {
		o(c)
	}
	return c
}

// Fork derives an independent codec sharing the same basis V1, so values
// constructed by parent and child are interoperable. Each fork has its own
// RNG stream and scratch space, making it safe to use from another
// goroutine.
func (c *Codec) Fork() *Codec {
	f := &Codec{
		d:        c.d,
		rng:      c.rng.Split(),
		one:      c.one,
		minusOne: c.minusOne,
		margin:   c.margin,
		sqrtIter: c.sqrtIter,
		divIter:  c.divIter,
		permStep: c.permStep,
		mask:     hv.New(c.d),
		tmpA:     hv.New(c.d),
		tmpB:     hv.New(c.d),
	}
	return f
}

// Reseed resets the codec's private RNG to the stream defined by seed. The
// basis and every constructed value stay valid; only the randomness of
// subsequent stochastic operations changes. Reseeding lets a unit of work
// (a pyramid-level cell row, a detection window) be a pure function of its
// position, so parallel sweeps produce identical results regardless of
// goroutine scheduling.
func (c *Codec) Reseed(seed uint64) { c.rng.Reseed(seed) }

// D returns the codec dimensionality.
func (c *Codec) D() int { return c.d }

// One returns the basis hypervector V1 (do not mutate).
func (c *Codec) One() *hv.Vector { return c.one }

// MinusOne returns V_{-1} (do not mutate).
func (c *Codec) MinusOne() *hv.Vector { return c.minusOne }

// Margin returns the comparison margin in value units.
func (c *Codec) Margin() float64 { return c.margin }

// clamp keeps a in [-1, 1].
func clamp(a float64) float64 {
	switch {
	case a < -1:
		return -1
	case a > 1:
		return 1
	}
	return a
}

// Construct returns a fresh hypervector representing a in [-1, 1]. Values
// outside the range are clamped, matching the paper's normalisation step.
func (c *Codec) Construct(a float64) *hv.Vector {
	a = clamp(a)
	c.Stats.Constructs++
	c.Stats.MaskWords += int64((c.d + 63) / 64)
	obsConstructs.Inc()
	obsWords.Add(2 * int64((c.d+63)/64))
	// Select from V1 with probability (1+a)/2, else from -V1. Selecting
	// from -V1 means flipping, so the flip mask is Bernoulli((1-a)/2).
	out := hv.NewRandBiased(c.rng, c.d, (1-a)/2)
	out.Xor(out, c.one)
	c.Stats.XorWords += int64((c.d + 63) / 64)
	return out
}

// Decode returns the value represented by v: delta(v, V1).
func (c *Codec) Decode(v *hv.Vector) float64 {
	c.Stats.Decodes++
	c.Stats.PopWords += int64((c.d + 63) / 64)
	obsDecodes.Inc()
	obsWords.Add(int64((c.d + 63) / 64))
	return v.Cos(c.one)
}

// Neg returns a fresh hypervector for -a given Va.
func (c *Codec) Neg(v *hv.Vector) *hv.Vector {
	c.Stats.XorWords += int64((c.d + 63) / 64)
	obsWords.Add(int64((c.d + 63) / 64))
	return v.Neg()
}

// WeightedAvg returns a fresh hypervector representing p*a + (1-p)*b given
// Va and Vb. p must be in [0, 1].
func (c *Codec) WeightedAvg(p float64, a, b *hv.Vector) *hv.Vector {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stoch: weight %v outside [0,1]", p))
	}
	c.Stats.Averages++
	w := int64((c.d + 63) / 64)
	c.Stats.MaskWords += w
	c.Stats.SelectWords += w
	obsAverages.Inc()
	obsWords.Add(2 * w)
	c.mask.RandBiased(c.rng, p)
	return hv.New(c.d).Select(c.mask, a, b)
}

// Add returns V_{(a+b)/2} — the scaled stochastic sum.
func (c *Codec) Add(a, b *hv.Vector) *hv.Vector {
	return c.WeightedAvg(0.5, a, b)
}

// Sub returns V_{(a-b)/2} — the scaled stochastic difference.
func (c *Codec) Sub(a, b *hv.Vector) *hv.Vector {
	c.Stats.XorWords += int64((c.d + 63) / 64)
	obsWords.Add(int64((c.d + 63) / 64))
	c.tmpA.Not(b)
	return c.WeightedAvg(0.5, a, c.tmpA)
}

// Mul returns V_{ab} = V1 ^ Va ^ Vb. The operands must carry independent
// flip masks; use Decorrelate when reusing a vector (e.g. squaring).
func (c *Codec) Mul(a, b *hv.Vector) *hv.Vector {
	c.Stats.Muls++
	c.Stats.XorWords += 2 * int64((c.d+63)/64)
	obsMuls.Inc()
	obsWords.Add(2 * int64((c.d+63)/64))
	return hv.New(c.d).Xor3(c.one, a, b)
}

// Decorrelate returns a fresh representation of the same value with a
// rotated flip mask: V1 ^ rho_k(V ^ V1). The decoded value is preserved
// exactly (mask popcount is rotation-invariant) while the bit pattern is
// pairwise decorrelated from v.
func (c *Codec) Decorrelate(v *hv.Vector) *hv.Vector {
	c.Stats.Decorrs++
	w := int64((c.d + 63) / 64)
	c.Stats.XorWords += 2 * w
	c.Stats.PermWords += w
	obsDecorrs.Inc()
	obsWords.Add(3 * w)
	c.tmpA.Xor(v, c.one)
	out := hv.New(c.d).Permute(c.tmpA, c.permStep)
	return out.Xor(out, c.one)
}

// DecorrelateShift is Decorrelate with a caller-chosen rotation k, letting
// callers that fetch the same cached vector many times (the pixel-level
// table of the hyperspace HOG) draw a fresh shift per fetch so fetches stay
// pairwise decorrelated. k = 0 returns a plain clone.
func (c *Codec) DecorrelateShift(v *hv.Vector, k int) *hv.Vector {
	if k%c.d == 0 {
		return v.Clone()
	}
	c.Stats.Decorrs++
	w := int64((c.d + 63) / 64)
	c.Stats.XorWords += 2 * w
	c.Stats.PermWords += w
	obsDecorrs.Inc()
	obsWords.Add(3 * w)
	c.tmpA.Xor(v, c.one)
	out := hv.New(c.d).Permute(c.tmpA, k)
	return out.Xor(out, c.one)
}

// Square returns V_{a^2}, decorrelating the operand against itself.
func (c *Codec) Square(v *hv.Vector) *hv.Vector {
	return c.Mul(v, c.Decorrelate(v))
}

// Scale returns V_{r*a} for a known constant r in [-1, 1], by multiplying
// with a freshly constructed V_r (fresh masks keep operands independent).
func (c *Codec) Scale(r float64, v *hv.Vector) *hv.Vector {
	return c.Mul(c.Construct(r), v)
}

// Compare reports the ordering of the represented values: +1 if a > b,
// -1 if a < b, 0 when they are equal within the statistical margin. It
// stays in the HD domain: it decodes the sign of the scaled difference
// 0.5a (+) 0.5(-b).
func (c *Codec) Compare(a, b *hv.Vector) int {
	c.Stats.Compares++
	obsCompares.Inc()
	diff := c.Sub(a, b) // represents (a-b)/2
	v := c.Decode(diff)
	switch {
	case v > c.margin/2: // margin on (a-b)/2 scale
		return 1
	case v < -c.margin/2:
		return -1
	}
	return 0
}

// Sign returns +1, -1 or 0 for the represented value of v, using the
// statistical margin around zero.
func (c *Codec) Sign(v *hv.Vector) int {
	d := c.Decode(v)
	switch {
	case d > c.margin:
		return 1
	case d < -c.margin:
		return -1
	}
	return 0
}

// Abs returns a hypervector for |a| given Va: v itself when the decoded
// sign is non-negative, otherwise its negation.
func (c *Codec) Abs(v *hv.Vector) *hv.Vector {
	if c.Sign(v) < 0 {
		return c.Neg(v)
	}
	return v.Clone()
}

// Sqrt returns V_{sqrt(a)} for a represented non-negative a, via the
// paper's hypervector binary search on [0, 1]. Negative represented values
// (within noise of zero) yield V_0.
func (c *Codec) Sqrt(v *hv.Vector) *hv.Vector {
	c.Stats.Sqrts++
	obsSqrts.Inc()
	low := c.Construct(0)
	high := c.one.Clone()
	var mid *hv.Vector
	for i := 0; i < c.sqrtIter; i++ {
		mid = c.WeightedAvg(0.5, low, high)
		sq := c.Square(mid)
		switch c.Compare(sq, v) {
		case 1:
			high = mid
		case -1:
			low = mid
		default:
			return mid
		}
	}
	return c.WeightedAvg(0.5, low, high)
}

// Div returns V_{a/b} for represented values with |a| <= |b| and b != 0
// (the quotient must fit in [-1, 1]); the binary search finds m minimising
// |m*b - a|. Signs are handled by searching on magnitudes.
func (c *Codec) Div(a, b *hv.Vector) *hv.Vector {
	c.Stats.Divs++
	obsDivs.Inc()
	sa, sb := c.Sign(a), c.Sign(b)
	if sb == 0 {
		// Division by (statistical) zero: saturate to the sign of a.
		return c.Construct(float64(sa))
	}
	absA := c.Abs(a)
	absB := c.Abs(b)
	low := c.Construct(0)
	high := c.one.Clone()
	mid := c.WeightedAvg(0.5, low, high)
	for i := 0; i < c.divIter; i++ {
		prod := c.Mul(mid, c.Decorrelate(absB))
		cmp := c.Compare(prod, absA)
		if cmp == 0 {
			break
		}
		if cmp > 0 {
			high = mid
		} else {
			low = mid
		}
		mid = c.WeightedAvg(0.5, low, high)
	}
	if sa*sb < 0 {
		return c.Neg(mid)
	}
	return mid
}
