package stoch

import "hdface/internal/hv"

// Extended arithmetic built from the primitive set — the paper's Section 4
// closes with "these arithmetic can be easily expanded"; this file does so
// with the operations downstream feature extractors ask for next: min/max,
// clamping, linear interpolation, powers and polynomial evaluation.

// Max returns a hypervector representing max(a, b): the comparison decodes
// the sign of the scaled difference and the winner is cloned.
func (c *Codec) Max(a, b *hv.Vector) *hv.Vector {
	if c.Compare(a, b) >= 0 {
		return a.Clone()
	}
	return b.Clone()
}

// Min returns a hypervector representing min(a, b).
func (c *Codec) Min(a, b *hv.Vector) *hv.Vector {
	if c.Compare(a, b) <= 0 {
		return a.Clone()
	}
	return b.Clone()
}

// Clamp returns v limited to the represented interval [lo, hi]; lo and hi
// are plain constants (they become hypervectors only if a bound binds).
func (c *Codec) Clamp(v *hv.Vector, lo, hi float64) *hv.Vector {
	if lo > hi {
		panic("stoch: Clamp bounds inverted")
	}
	d := c.Decode(v)
	switch {
	case d < lo:
		return c.Construct(lo)
	case d > hi:
		return c.Construct(hi)
	}
	return v.Clone()
}

// Lerp returns the interpolation a + t*(b-a) for a constant t in [0, 1] —
// exactly the weighted average with swapped weight convention.
func (c *Codec) Lerp(a, b *hv.Vector, t float64) *hv.Vector {
	return c.WeightedAvg(1-t, a, b)
}

// Pow returns V_{a^n} for integer n >= 1 by repeated decorrelated
// multiplication. Error grows with n (each multiply contributes its own
// sampling noise), so high powers want high D.
func (c *Codec) Pow(v *hv.Vector, n int) *hv.Vector {
	if n < 1 {
		panic("stoch: Pow needs n >= 1")
	}
	out := v.Clone()
	for i := 1; i < n; i++ {
		// A distinct rotation per factor: reusing one fixed rotation
		// would cancel pairs of identical masks across iterations
		// (rho(v) XOR rho(v) = 0) and collapse v^3 back to v.
		out = c.Mul(out, c.DecorrelateShift(v, i*c.permStep+i))
	}
	return out
}

// Poly evaluates the polynomial sum_i coeffs[i] * x^i at the represented
// value of x, via a running-mean Horner scheme in hyperspace: the step for
// coefficient i folds the constant in with weight 1/(terms so far), which
// keeps every term at the same scale. The result represents
// sum_i coeffs[i] x^i / len(coeffs); the returned scale (= len(coeffs))
// recovers the polynomial value on decode. All coefficients must lie in
// [-1, 1].
func (c *Codec) Poly(x *hv.Vector, coeffs []float64) (v *hv.Vector, scale float64) {
	if len(coeffs) == 0 {
		panic("stoch: Poly needs at least one coefficient")
	}
	for _, co := range coeffs {
		if co < -1 || co > 1 {
			panic("stoch: Poly coefficients must lie in [-1, 1]")
		}
	}
	m := len(coeffs)
	v = c.Construct(coeffs[m-1])
	for i := m - 2; i >= 0; i-- {
		// Distinct rotation per Horner step (see Pow).
		shifted := c.DecorrelateShift(x, (i+1)*c.permStep+i+1)
		// v holds the uniform mean of the m-i-1 inner terms; folding the
		// constant with weight 1/(m-i) keeps the mean uniform.
		r := float64(m - i)
		v = c.WeightedAvg(1/r, c.Construct(coeffs[i]), c.Mul(shifted, v))
	}
	return v, float64(m)
}

// AbsDiff returns a hypervector representing |a - b| / 2 — the scaled
// absolute difference used by block-matching style feature extractors.
func (c *Codec) AbsDiff(a, b *hv.Vector) *hv.Vector {
	return c.Abs(c.Sub(a, b))
}

// MeanAbsDev returns the stochastic mean of |v_i - m|/2 where m is the
// provided mean hypervector — a dispersion statistic over represented
// values, built from balanced-tree averaging.
func (c *Codec) MeanAbsDev(vs []*hv.Vector, mean *hv.Vector) *hv.Vector {
	if len(vs) == 0 {
		panic("stoch: MeanAbsDev needs at least one vector")
	}
	devs := make([]*hv.Vector, len(vs))
	ws := make([]float64, len(vs))
	for i, v := range vs {
		devs[i] = c.AbsDiff(v, c.Decorrelate(mean))
		ws[i] = 1
	}
	return c.WeightedSum(devs, ws)
}
