package stoch

import "hdface/internal/hv"

// WeightedSum returns a hypervector representing the convex combination
// sum_i (w_i / W) * a_i where W = sum_i w_i and all weights are
// non-negative (negative-weight terms are expressed by negating the
// operand first). The combination is built as a balanced tree of pairwise
// weighted averages, which keeps the compounded selection noise O(1/D)
// regardless of fan-in — the same construction the hyperspace HOG uses for
// histogram means.
//
// It panics on empty input, negative weights, or an all-zero weight sum.
func (c *Codec) WeightedSum(vs []*hv.Vector, ws []float64) *hv.Vector {
	if len(vs) == 0 || len(vs) != len(ws) {
		panic("stoch: WeightedSum needs matching non-empty vectors and weights")
	}
	type node struct {
		v *hv.Vector
		w float64
	}
	nodes := make([]node, 0, len(vs))
	var total float64
	for i, v := range vs {
		if ws[i] < 0 {
			panic("stoch: WeightedSum weights must be non-negative")
		}
		if ws[i] == 0 {
			continue
		}
		nodes = append(nodes, node{v, ws[i]})
		total += ws[i]
	}
	if total == 0 {
		panic("stoch: WeightedSum weights sum to zero")
	}
	for len(nodes) > 1 {
		next := nodes[:0]
		for i := 0; i+1 < len(nodes); i += 2 {
			a, b := nodes[i], nodes[i+1]
			p := a.w / (a.w + b.w)
			next = append(next, node{c.WeightedAvg(p, a.v, b.v), a.w + b.w})
		}
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0].v
}

// DotConst returns a hypervector representing the normalised dot product
// sum_i (k_i * x_i) / sum_i |k_i| between a constant kernel k and
// represented values x — the inner loop of hyperspace convolution. Terms
// with negative kernel weights contribute through negated operands.
func (c *Codec) DotConst(ks []float64, xs []*hv.Vector) *hv.Vector {
	if len(ks) == 0 || len(ks) != len(xs) {
		panic("stoch: DotConst needs matching non-empty kernels and vectors")
	}
	vs := make([]*hv.Vector, 0, len(ks))
	ws := make([]float64, 0, len(ks))
	for i, k := range ks {
		switch {
		case k > 0:
			vs = append(vs, xs[i])
			ws = append(ws, k)
		case k < 0:
			vs = append(vs, c.Neg(xs[i]))
			ws = append(ws, -k)
		}
	}
	if len(vs) == 0 {
		return c.Construct(0)
	}
	return c.WeightedSum(vs, ws)
}
