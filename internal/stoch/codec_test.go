package stoch

import (
	"math"
	"testing"
	"testing/quick"
)

const testD = 8192

func newTestCodec() *Codec { return NewCodec(testD, 12345) }

func TestConstructDecodeRoundTrip(t *testing.T) {
	c := newTestCodec()
	for _, a := range []float64{-1, -0.75, -0.5, -0.25, 0, 0.25, 0.5, 0.75, 1} {
		v := c.Construct(a)
		got := c.Decode(v)
		if math.Abs(got-a) > 0.05 {
			t.Errorf("Decode(Construct(%v)) = %v", a, got)
		}
	}
}

func TestConstructClamps(t *testing.T) {
	c := newTestCodec()
	if got := c.Decode(c.Construct(3)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Construct(3) decodes to %v, want 1", got)
	}
	if got := c.Decode(c.Construct(-3)); math.Abs(got+1) > 1e-9 {
		t.Fatalf("Construct(-3) decodes to %v, want -1", got)
	}
}

func TestConstructExtremes(t *testing.T) {
	c := newTestCodec()
	if !c.Construct(1).Equal(c.One()) {
		t.Fatal("Construct(1) != V1")
	}
	if !c.Construct(-1).Equal(c.MinusOne()) {
		t.Fatal("Construct(-1) != -V1")
	}
}

func TestZeroIsOrthogonalToOne(t *testing.T) {
	c := newTestCodec()
	v0 := c.Construct(0)
	if got := c.Decode(v0); math.Abs(got) > 0.05 {
		t.Fatalf("V0 decodes to %v, want ~0", got)
	}
}

func TestNeg(t *testing.T) {
	c := newTestCodec()
	v := c.Construct(0.6)
	if got := c.Decode(c.Neg(v)); math.Abs(got+0.6) > 0.05 {
		t.Fatalf("Neg decodes to %v, want ~-0.6", got)
	}
}

func TestWeightedAvg(t *testing.T) {
	c := newTestCodec()
	cases := []struct{ p, a, b float64 }{
		{0.5, 0.8, -0.4},
		{0.25, 1, -1},
		{0.9, 0.1, 0.7},
		{0, 0.5, -0.5},
		{1, 0.5, -0.5},
	}
	for _, tc := range cases {
		va, vb := c.Construct(tc.a), c.Construct(tc.b)
		got := c.Decode(c.WeightedAvg(tc.p, va, vb))
		want := tc.p*tc.a + (1-tc.p)*tc.b
		if math.Abs(got-want) > 0.06 {
			t.Errorf("avg(p=%v, %v, %v) = %v, want %v", tc.p, tc.a, tc.b, got, want)
		}
	}
}

func TestWeightedAvgPanicsOnBadWeight(t *testing.T) {
	c := newTestCodec()
	v := c.Construct(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=1.5")
		}
	}()
	c.WeightedAvg(1.5, v, v)
}

func TestAddSubScaledSemantics(t *testing.T) {
	c := newTestCodec()
	a, b := 0.6, -0.2
	va, vb := c.Construct(a), c.Construct(b)
	if got, want := c.Decode(c.Add(va, vb)), (a+b)/2; math.Abs(got-want) > 0.05 {
		t.Fatalf("Add = %v, want %v", got, want)
	}
	if got, want := c.Decode(c.Sub(va, vb)), (a-b)/2; math.Abs(got-want) > 0.05 {
		t.Fatalf("Sub = %v, want %v", got, want)
	}
}

func TestSubOfEqualVectorsIsZero(t *testing.T) {
	// Even with the *same* vector (fully correlated), the fresh selection
	// mask makes Sub(v, v) decode to ~0.
	c := newTestCodec()
	v := c.Construct(0.4)
	if got := c.Decode(c.Sub(v, v)); math.Abs(got) > 0.05 {
		t.Fatalf("Sub(v,v) = %v, want ~0", got)
	}
}

func TestMul(t *testing.T) {
	c := newTestCodec()
	cases := [][2]float64{{0.5, 0.5}, {0.9, -0.7}, {-0.6, -0.8}, {1, 0.3}, {0, 0.9}}
	for _, tc := range cases {
		va, vb := c.Construct(tc[0]), c.Construct(tc[1])
		got := c.Decode(c.Mul(va, vb))
		want := tc[0] * tc[1]
		if math.Abs(got-want) > 0.06 {
			t.Errorf("Mul(%v, %v) = %v, want %v", tc[0], tc[1], got, want)
		}
	}
}

func TestMulByOneIsIdentity(t *testing.T) {
	c := newTestCodec()
	v := c.Construct(0.37)
	got := c.Mul(c.One(), v)
	if !got.Equal(v) {
		t.Fatal("V1 * Va != Va exactly")
	}
}

func TestMulCorrelationArtefact(t *testing.T) {
	// Documents the correlation hazard: multiplying a vector by itself
	// without decorrelation yields exactly V1 (the number 1).
	c := newTestCodec()
	v := c.Construct(0.3)
	if !c.Mul(v, v).Equal(c.One()) {
		t.Fatal("expected Mul(v, v) == V1 (correlation artefact)")
	}
}

func TestDecorrelatePreservesValueExactly(t *testing.T) {
	c := newTestCodec()
	for _, a := range []float64{-0.9, -0.3, 0, 0.42, 0.8} {
		v := c.Construct(a)
		w := c.Decorrelate(v)
		if c.Decode(w) != c.Decode(v) {
			t.Fatalf("decorrelate changed decoded value for a=%v", a)
		}
		if w.Equal(v) {
			t.Fatalf("decorrelate returned identical bits for a=%v", a)
		}
	}
}

func TestSquare(t *testing.T) {
	c := newTestCodec()
	for _, a := range []float64{-0.9, -0.5, 0, 0.3, 0.7, 1} {
		v := c.Construct(a)
		got := c.Decode(c.Square(v))
		if math.Abs(got-a*a) > 0.07 {
			t.Errorf("Square(%v) = %v, want %v", a, got, a*a)
		}
	}
}

func TestScale(t *testing.T) {
	c := newTestCodec()
	v := c.Construct(0.8)
	if got := c.Decode(c.Scale(0.5, v)); math.Abs(got-0.4) > 0.06 {
		t.Fatalf("Scale(0.5, 0.8) = %v, want 0.4", got)
	}
}

func TestCompare(t *testing.T) {
	c := newTestCodec()
	a, b := c.Construct(0.7), c.Construct(0.2)
	if c.Compare(a, b) != 1 {
		t.Fatal("0.7 > 0.2 not detected")
	}
	if c.Compare(b, a) != -1 {
		t.Fatal("0.2 < 0.7 not detected")
	}
	x, y := c.Construct(0.5), c.Construct(0.5)
	if got := c.Compare(x, y); got != 0 {
		t.Fatalf("equal values compared as %d", got)
	}
}

func TestSignAbs(t *testing.T) {
	c := newTestCodec()
	if c.Sign(c.Construct(0.5)) != 1 || c.Sign(c.Construct(-0.5)) != -1 {
		t.Fatal("Sign wrong on clear values")
	}
	if c.Sign(c.Construct(0)) != 0 {
		t.Fatal("Sign(0) != 0")
	}
	if got := c.Decode(c.Abs(c.Construct(-0.6))); math.Abs(got-0.6) > 0.05 {
		t.Fatalf("Abs(-0.6) = %v", got)
	}
	if got := c.Decode(c.Abs(c.Construct(0.6))); math.Abs(got-0.6) > 0.05 {
		t.Fatalf("Abs(0.6) = %v", got)
	}
}

func TestSqrt(t *testing.T) {
	c := NewCodec(16384, 99)
	for _, a := range []float64{0.04, 0.16, 0.25, 0.5, 0.81, 1} {
		v := c.Construct(a)
		got := c.Decode(c.Sqrt(v))
		if math.Abs(got-math.Sqrt(a)) > 0.1 {
			t.Errorf("Sqrt(%v) = %v, want %v", a, got, math.Sqrt(a))
		}
	}
}

func TestSqrtOfZeroIsSmall(t *testing.T) {
	c := newTestCodec()
	got := c.Decode(c.Sqrt(c.Construct(0)))
	if got > 0.25 {
		t.Fatalf("Sqrt(0) = %v, want small", got)
	}
}

func TestDiv(t *testing.T) {
	c := NewCodec(16384, 7)
	cases := [][2]float64{{0.2, 0.8}, {0.5, 0.9}, {-0.3, 0.6}, {0.4, -0.8}, {-0.2, -0.4}}
	for _, tc := range cases {
		va, vb := c.Construct(tc[0]), c.Construct(tc[1])
		got := c.Decode(c.Div(va, vb))
		want := tc[0] / tc[1]
		if math.Abs(got-want) > 0.12 {
			t.Errorf("Div(%v, %v) = %v, want %v", tc[0], tc[1], got, want)
		}
	}
}

func TestDivByStatisticalZeroSaturates(t *testing.T) {
	c := newTestCodec()
	got := c.Decode(c.Div(c.Construct(0.5), c.Construct(0)))
	if math.Abs(got-1) > 0.1 {
		t.Fatalf("x/0 = %v, want saturation to 1", got)
	}
}

func TestForkSharesBasis(t *testing.T) {
	c := newTestCodec()
	f := c.Fork()
	if !f.One().Equal(c.One()) {
		t.Fatal("fork has different basis")
	}
	// Values constructed by the fork must decode correctly in the parent.
	v := f.Construct(0.5)
	if got := c.Decode(v); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("cross-codec decode = %v", got)
	}
}

func TestErrorShrinksWithDimensionality(t *testing.T) {
	// The Figure 2 trend: relative error decreases with D.
	errAt := func(d int) float64 {
		c := NewCodec(d, 5)
		var sum float64
		const trials = 40
		for i := 0; i < trials; i++ {
			a := -0.9 + 1.8*float64(i)/trials
			b := 0.9 - 1.8*float64(i)/trials
			got := c.Decode(c.Mul(c.Construct(a), c.Construct(b)))
			sum += math.Abs(got - a*b)
		}
		return sum / trials
	}
	small, large := errAt(512), errAt(16384)
	if large >= small {
		t.Fatalf("error did not shrink with D: %v (512) vs %v (16k)", small, large)
	}
}

func TestStatsCounting(t *testing.T) {
	c := newTestCodec()
	before := c.Stats
	v := c.Construct(0.5)
	w := c.Construct(-0.5)
	c.Add(v, w)
	c.Mul(v, w)
	c.Decode(v)
	if c.Stats.Constructs-before.Constructs != 2 {
		t.Fatalf("constructs counted %d", c.Stats.Constructs-before.Constructs)
	}
	if c.Stats.Averages-before.Averages != 1 {
		t.Fatal("averages not counted")
	}
	if c.Stats.Muls-before.Muls != 1 {
		t.Fatal("muls not counted")
	}
	if c.Stats.Decodes-before.Decodes != 1 {
		t.Fatal("decodes not counted")
	}
	if c.Stats.TotalWords() == before.TotalWords() {
		t.Fatal("word counters idle")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Constructs: 1, XorWords: 10}
	b := Stats{Constructs: 2, XorWords: 5, Muls: 3}
	a.Add(b)
	if a.Constructs != 3 || a.XorWords != 15 || a.Muls != 3 {
		t.Fatalf("Stats.Add wrong: %+v", a)
	}
}

// Property: for random pairs, Mul commutes (bit-exact, since XOR commutes).
func TestMulCommutativeProperty(t *testing.T) {
	c := newTestCodec()
	f := func(x, y uint8) bool {
		a := float64(x)/255*2 - 1
		b := float64(y)/255*2 - 1
		va, vb := c.Construct(a), c.Construct(b)
		return c.Mul(va, vb).Equal(c.Mul(vb, va))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoded construction error is within 6 sigma for random values.
func TestConstructErrorBoundProperty(t *testing.T) {
	c := newTestCodec()
	bound := 6 / math.Sqrt(float64(testD))
	f := func(x uint16) bool {
		a := float64(x)/65535*2 - 1
		got := c.Decode(c.Construct(a))
		return math.Abs(got-a) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: negation is an exact involution on the decoded value.
func TestNegInvolutionProperty(t *testing.T) {
	c := newTestCodec()
	f := func(x uint8) bool {
		a := float64(x)/255*2 - 1
		v := c.Construct(a)
		return c.Neg(c.Neg(v)).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConstruct(b *testing.B) {
	c := NewCodec(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Construct(0.37)
	}
}

func BenchmarkMul(b *testing.B) {
	c := NewCodec(4096, 1)
	x, y := c.Construct(0.5), c.Construct(-0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Mul(x, y)
	}
}

func BenchmarkAdd(b *testing.B) {
	c := NewCodec(4096, 1)
	x, y := c.Construct(0.5), c.Construct(-0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(x, y)
	}
}

func BenchmarkSqrt(b *testing.B) {
	c := NewCodec(4096, 1)
	v := c.Construct(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Sqrt(v)
	}
}

// BenchmarkSqrtIterations is the DESIGN.md ablation: search depth 2..12.
func BenchmarkSqrtIterations(b *testing.B) {
	for _, iters := range []int{2, 4, 8, 12} {
		b.Run(itoa(iters), func(b *testing.B) {
			c := NewCodec(4096, 1, WithSqrtIterations(iters))
			v := c.Construct(0.5)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Sqrt(v)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
