package stoch_test

import (
	"fmt"
	"math"

	"hdface/internal/stoch"
)

// round quantises stochastic decodes for stable example output.
func round(v float64) float64 { return math.Round(v*10) / 10 }

// ExampleCodec_Mul multiplies two numbers entirely in hyperspace.
func ExampleCodec_Mul() {
	c := stoch.NewCodec(65536, 42)
	a := c.Construct(0.5)
	b := c.Construct(-0.8)
	fmt.Println(round(c.Decode(c.Mul(a, b))))
	// Output:
	// -0.4
}

// ExampleCodec_WeightedAvg averages two numbers with a 3:1 weighting.
func ExampleCodec_WeightedAvg() {
	c := stoch.NewCodec(65536, 42)
	a := c.Construct(1)
	b := c.Construct(-1)
	fmt.Println(round(c.Decode(c.WeightedAvg(0.75, a, b))))
	// Output:
	// 0.5
}

// ExampleCodec_Sqrt extracts a square root with the paper's hypervector
// binary search.
func ExampleCodec_Sqrt() {
	c := stoch.NewCodec(65536, 42)
	v := c.Construct(0.25)
	fmt.Println(round(c.Decode(c.Sqrt(v))))
	// Output:
	// 0.5
}

// ExampleCodec_Compare orders two represented values.
func ExampleCodec_Compare() {
	c := stoch.NewCodec(16384, 42)
	fmt.Println(c.Compare(c.Construct(0.7), c.Construct(0.2)))
	fmt.Println(c.Compare(c.Construct(0.2), c.Construct(0.7)))
	// Output:
	// 1
	// -1
}

// ExampleRecommendD sizes the dimensionality from an error budget.
func ExampleRecommendD() {
	fmt.Println(stoch.RecommendD(0.016))
	// Output:
	// 4096
}
