package stoch

import "math"

// Analytic error model for the stochastic operations — the "statistical
// margins of error" the paper's square-root search terminates on, made
// explicit. Every represented value is a +-1 Bernoulli estimator over D
// dimensions, so each operation's decoded output carries a binomial
// standard deviation that these functions predict; the errmodel tests
// verify the predictions against Monte Carlo measurement, and Figure 2's
// 1/sqrt(D) trend is ConstructStd at work.

// ConstructStd returns the standard deviation of Decode(Construct(a)):
// each dimension is +-1 with mean a, so the variance of the mean of D
// components is (1 - a^2) / D.
func (c *Codec) ConstructStd(a float64) float64 {
	a = clamp(a)
	return math.Sqrt((1 - a*a) / float64(c.d))
}

// AvgStd returns the standard deviation of Decode(WeightedAvg(p, Va, Vb))
// for freshly constructed independent operands representing a and b. Each
// output dimension takes Va's value with probability p: a +-1 variable
// with mean m = p*a + (1-p)*b, giving variance (1 - m^2) / D.
func (c *Codec) AvgStd(p, a, b float64) float64 {
	m := p*clamp(a) + (1-p)*clamp(b)
	return math.Sqrt((1 - m*m) / float64(c.d))
}

// MulStd returns the standard deviation of Decode(Mul(Va, Vb)) for
// independent fresh operands: the output dimensions are +-1 with mean
// a*b, so the variance is (1 - (ab)^2) / D.
func (c *Codec) MulStd(a, b float64) float64 {
	m := clamp(a) * clamp(b)
	return math.Sqrt((1 - m*m) / float64(c.d))
}

// CompareErrProb returns the expected error of Compare on two freshly
// constructed values a > b, counting a zero (within-margin) verdict as
// half an error. The decoded difference is ~N((a-b)/2, AvgStd), and
// Compare's dead band spans +-margin/2 around zero, so
//
//	err = 0.5 * (Phi((m - diff)/sigma) + Phi(-(m + diff)/sigma))
//
// with m = margin/2. The normal approximation is accurate for D >= 1k.
func (c *Codec) CompareErrProb(a, b float64) float64 {
	if a == b {
		return 0.5 // coin flip by construction
	}
	if a < b {
		a, b = b, a
	}
	diff := (clamp(a) - clamp(b)) / 2
	sigma := c.AvgStd(0.5, a, -b)
	if sigma == 0 {
		return 0
	}
	m := c.margin / 2
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	return 0.5 * (phi((m-diff)/sigma) + phi(-(m+diff)/sigma))
}

// SqrtMarginStd returns the expected standard deviation of the binary
// search result of Sqrt around sqrt(a): the search stops inside the
// comparison margin band, whose width in value units dominates for
// practical iteration counts.
func (c *Codec) SqrtMarginStd(a float64) float64 {
	a = clamp(a)
	if a < 0 {
		a = 0
	}
	root := math.Sqrt(a)
	// Margin on m^2 translates to margin/(2*root) on m; near zero the
	// slope blows up, capped by the search interval resolution.
	slope := 2 * root
	if slope < 0.25 {
		slope = 0.25
	}
	searchRes := 1 / math.Exp2(float64(c.sqrtIter))
	return math.Max(c.margin/slope, searchRes)
}

// RecommendD returns the smallest power-of-two dimensionality whose
// construction error standard deviation at a = 0 is at most target. This
// is the sizing rule the paper's Section 4 closes with: pick D from the
// application's error budget.
func RecommendD(target float64) int {
	if target <= 0 {
		panic("stoch: error target must be positive")
	}
	d := 64
	for math.Sqrt(1/float64(d)) > target && d < 1<<26 {
		d *= 2
	}
	return d
}
