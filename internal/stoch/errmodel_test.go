package stoch

import (
	"math"
	"testing"
)

// measureStd runs f repeatedly and returns the empirical standard
// deviation around want.
func measureStd(trials int, want float64, f func() float64) float64 {
	var sq float64
	for i := 0; i < trials; i++ {
		d := f() - want
		sq += d * d
	}
	return math.Sqrt(sq / float64(trials))
}

func TestConstructStdMatchesMonteCarlo(t *testing.T) {
	c := NewCodec(4096, 61)
	for _, a := range []float64{0, 0.5, 0.9} {
		pred := c.ConstructStd(a)
		got := measureStd(300, a, func() float64 { return c.Decode(c.Construct(a)) })
		if got < pred*0.8 || got > pred*1.25 {
			t.Fatalf("a=%v: measured std %v vs predicted %v", a, got, pred)
		}
	}
}

func TestConstructStdEdgeValues(t *testing.T) {
	c := NewCodec(1024, 62)
	if c.ConstructStd(1) != 0 || c.ConstructStd(-1) != 0 {
		t.Fatal("exact endpoint values must have zero variance")
	}
	if c.ConstructStd(5) != 0 {
		t.Fatal("clamped value variance wrong")
	}
}

func TestAvgStdMatchesMonteCarlo(t *testing.T) {
	c := NewCodec(4096, 63)
	a, b, p := 0.6, -0.2, 0.7
	pred := c.AvgStd(p, a, b)
	want := p*a + (1-p)*b
	got := measureStd(300, want, func() float64 {
		return c.Decode(c.WeightedAvg(p, c.Construct(a), c.Construct(b)))
	})
	if got < pred*0.8 || got > pred*1.25 {
		t.Fatalf("measured %v vs predicted %v", got, pred)
	}
}

func TestMulStdMatchesMonteCarlo(t *testing.T) {
	c := NewCodec(4096, 64)
	a, b := 0.5, 0.4
	pred := c.MulStd(a, b)
	got := measureStd(300, a*b, func() float64 {
		return c.Decode(c.Mul(c.Construct(a), c.Construct(b)))
	})
	if got < pred*0.8 || got > pred*1.25 {
		t.Fatalf("measured %v vs predicted %v", got, pred)
	}
}

func TestCompareErrProbMatchesMonteCarlo(t *testing.T) {
	c := NewCodec(1024, 65)
	// Close values where errors are measurable at D=1k.
	a, b := 0.3, 0.24
	pred := c.CompareErrProb(a, b)
	errors := 0.0
	const trials = 600
	for i := 0; i < trials; i++ {
		switch c.Compare(c.Construct(a), c.Construct(b)) {
		case -1:
			errors++
		case 0:
			errors += 0.5
		}
	}
	got := errors / trials
	if math.Abs(got-pred) > 0.08 {
		t.Fatalf("measured error rate %v vs predicted %v", got, pred)
	}
}

func TestCompareErrProbShrinksWithSeparationAndD(t *testing.T) {
	c1 := NewCodec(1024, 66)
	c2 := NewCodec(8192, 66)
	if c1.CompareErrProb(0.3, 0.2) >= c1.CompareErrProb(0.3, 0.28) {
		t.Fatal("wider separation must have lower error probability")
	}
	if c2.CompareErrProb(0.3, 0.25) >= c1.CompareErrProb(0.3, 0.25) {
		t.Fatal("higher D must have lower error probability")
	}
	if c1.CompareErrProb(0.5, 0.5) != 0.5 {
		t.Fatal("equal values must be a coin flip")
	}
}

func TestSqrtMarginStdSanity(t *testing.T) {
	c := NewCodec(4096, 67)
	// Measured sqrt spread should be within a small factor of the model.
	a := 0.5
	pred := c.SqrtMarginStd(a)
	got := measureStd(150, math.Sqrt(a), func() float64 {
		return c.Decode(c.Sqrt(c.Construct(a)))
	})
	if got > pred*4 || got < pred/6 {
		t.Fatalf("sqrt spread %v far from modelled %v", got, pred)
	}
	// Near zero the model must not explode below search resolution.
	if c.SqrtMarginStd(0) <= 0 {
		t.Fatal("degenerate margin at zero")
	}
}

func TestRecommendD(t *testing.T) {
	if d := RecommendD(0.016); d != 4096 {
		t.Fatalf("RecommendD(0.016) = %d, want 4096", d)
	}
	if d := RecommendD(0.1); d > 128 {
		t.Fatalf("loose target needs small D, got %d", d)
	}
	// The recommendation must satisfy its own contract.
	target := 0.02
	d := RecommendD(target)
	if math.Sqrt(1/float64(d)) > target {
		t.Fatal("recommended D misses the target")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive target did not panic")
		}
	}()
	RecommendD(0)
}
