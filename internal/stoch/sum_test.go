package stoch

import (
	"math"
	"testing"
	"testing/quick"

	"hdface/internal/hv"
)

func TestWeightedSumUniform(t *testing.T) {
	c := NewCodec(16384, 21)
	vals := []float64{0.8, -0.4, 0.2, 0.6}
	vs := make([]*hv.Vector, len(vals))
	ws := make([]float64, len(vals))
	var want float64
	for i, a := range vals {
		vs[i] = c.Construct(a)
		ws[i] = 1
		want += a / float64(len(vals))
	}
	got := c.Decode(c.WeightedSum(vs, ws))
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("uniform sum = %v, want %v", got, want)
	}
}

func TestWeightedSumNonUniform(t *testing.T) {
	c := NewCodec(16384, 22)
	vs := []*hv.Vector{c.Construct(1), c.Construct(-1)}
	ws := []float64{3, 1}
	got := c.Decode(c.WeightedSum(vs, ws))
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("3:1 sum of +-1 = %v, want 0.5", got)
	}
}

func TestWeightedSumSkipsZeroWeights(t *testing.T) {
	c := NewCodec(8192, 23)
	vs := []*hv.Vector{c.Construct(0.5), c.Construct(-1)}
	got := c.Decode(c.WeightedSum(vs, []float64{1, 0}))
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("zero-weight term leaked: %v", got)
	}
}

func TestWeightedSumSingle(t *testing.T) {
	c := NewCodec(4096, 24)
	v := c.Construct(0.3)
	if !c.WeightedSum([]*hv.Vector{v}, []float64{2}).Equal(v) {
		t.Fatal("single-element sum should be the element itself")
	}
}

func TestWeightedSumPanics(t *testing.T) {
	c := NewCodec(256, 25)
	v := c.Construct(0)
	for name, f := range map[string]func(){
		"empty":    func() { c.WeightedSum(nil, nil) },
		"misalign": func() { c.WeightedSum([]*hv.Vector{v}, []float64{1, 2}) },
		"negative": func() { c.WeightedSum([]*hv.Vector{v}, []float64{-1}) },
		"allzero":  func() { c.WeightedSum([]*hv.Vector{v}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDotConstSobelLike(t *testing.T) {
	// A centred difference kernel: [-1, 0, 1] over values (a, b, c)
	// represents (c - a) / 2.
	c := NewCodec(16384, 26)
	xs := []*hv.Vector{c.Construct(-0.6), c.Construct(0.1), c.Construct(0.8)}
	got := c.Decode(c.DotConst([]float64{-1, 0, 1}, xs))
	want := (0.8 - (-0.6)) / 2
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("dot = %v, want %v", got, want)
	}
}

func TestDotConstAllZeroKernel(t *testing.T) {
	c := NewCodec(4096, 27)
	xs := []*hv.Vector{c.Construct(0.5)}
	got := c.Decode(c.DotConst([]float64{0}, xs))
	if math.Abs(got) > 0.05 {
		t.Fatalf("zero kernel = %v, want ~0", got)
	}
}

func TestDotConstPanics(t *testing.T) {
	c := NewCodec(256, 28)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on misaligned DotConst")
		}
	}()
	c.DotConst([]float64{1}, nil)
}

// Property: WeightedSum of constructed values stays within 6 sigma of the
// exact convex combination for random weights.
func TestWeightedSumProperty(t *testing.T) {
	c := NewCodec(8192, 29)
	bound := 6 / math.Sqrt(8192.0)
	f := func(a, b uint8, wRaw uint8) bool {
		x := float64(a)/255*2 - 1
		y := float64(b)/255*2 - 1
		w := 0.1 + float64(wRaw)/255*0.8
		got := c.Decode(c.WeightedSum(
			[]*hv.Vector{c.Construct(x), c.Construct(y)},
			[]float64{w, 1 - w}))
		want := w*x + (1-w)*y
		// Two constructions plus one select: allow 3 stacked deviations.
		return math.Abs(got-want) <= 3*bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWeightedSum9(b *testing.B) {
	c := NewCodec(4096, 1)
	vs := make([]*hv.Vector, 9)
	ws := make([]float64, 9)
	for i := range vs {
		vs[i] = c.Construct(float64(i)/8*2 - 1)
		ws[i] = float64(i + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.WeightedSum(vs, ws)
	}
}
