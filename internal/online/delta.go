// Delta accumulation and merging: the distributed half of online learning.
//
// HDC class memory is an additive sum of bundled features, so feedback
// evidence gathered on different replicas merges by plain element-wise
// addition — bundling — with no coordination. Each replica keeps a Delta:
// an integer class-memory accumulator of the mistake-driven ±1 feature
// contributions it has absorbed since it last adopted a model, plus
// per-class sample counts. A router periodically pulls every replica's
// delta, merges them with a Merger, folds the merged evidence into the
// base model (ApplyDelta) and pushes the candidate back through each
// replica's promote gate.
//
// The merge is a state-based CRDT. Each delta is a cumulative snapshot
// ordered by the replica-local pair (Epoch, Seq) — Epoch bumps every time
// the accumulator rebases onto a newly adopted model, Seq counts samples
// absorbed within the epoch — so the Merger keeps only the newest state
// per replica. Duplicate delivery is a no-op (same (Epoch, Seq)),
// out-of-order arrival is a no-op (older pairs lose), replica loss just
// means a replica's last-seen state keeps contributing, and the
// cross-replica combine is element-wise integer addition, which is
// commutative and associative. Evidence epochs are keyed on Base, a
// content fingerprint of the model the evidence was accumulated against
// (hdc.Model.Fingerprint), never on registry version IDs: IDs are
// replica-local and drift apart after a partition, fingerprints cannot.
package online

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"hdface/internal/hdc"
	"hdface/internal/hv"
)

// deltaMagic prefixes the wire form so a decoder can reject junk before
// allocating anything.
var deltaMagic = [4]byte{'H', 'D', 'D', '1'}

// Wire-form plausibility bounds, mirroring hdc.Load's hostile-input
// posture: geometry beyond these is corruption or an attack, not a model.
const (
	maxDeltaD       = 1 << 24
	maxDeltaK       = 1 << 20
	maxDeltaCells   = 1 << 24 // bounds K*D, so a hostile header cannot drive a 100 GiB allocation
	maxDeltaReplica = 256
)

// Delta is one replica's cumulative feedback evidence: for every class, an
// integer accumulator holding the bundling sum of the ±1 bits of the
// features the replica mis-predicted (added at the true label, subtracted
// at the predicted one — the paper's mistake-driven update with unit
// weight), plus per-class sample counts. Deltas merge by addition.
type Delta struct {
	// Replica identifies the accumulating replica; the Merger keys its
	// per-replica latest-state map on it.
	Replica string
	// Base is the fingerprint of the model the evidence was accumulated
	// against (hdc.Model.Fingerprint). Only deltas sharing a base may be
	// folded into that base model — evidence against another model might
	// double-count samples its training already absorbed.
	Base uint64
	// Epoch is a replica-local rebase counter: it increments every time
	// the accumulator resets onto a newly adopted model and never goes
	// backwards, so (Epoch, Seq) totally orders one replica's states.
	Epoch uint64
	// Seq counts samples absorbed within the current epoch.
	Seq uint64
	// D and K are the model geometry the accumulator is shaped for.
	D, K int
	// Counts is the per-class number of absorbed samples.
	Counts []int64
	// Acc is the K x D integer class-memory accumulator.
	Acc [][]int32
}

// NewDelta returns an empty accumulator for a d-dimensional k-class model.
func NewDelta(replica string, base uint64, epoch uint64, d, k int) *Delta {
	dl := &Delta{Replica: replica, Base: base, Epoch: epoch, D: d, K: k,
		Counts: make([]int64, k), Acc: make([][]int32, k)}
	for c := range dl.Acc {
		dl.Acc[c] = make([]int32, d)
	}
	return dl
}

// Add absorbs one mis-predicted feedback sample: the feature's ±1 bits are
// added into the true class's accumulator and subtracted from the
// (wrongly) predicted class's — exactly the model's mistake-driven double
// update at integer weight 1, which keeps per-replica sums mergeable by
// addition. Correctly predicted samples carry no evidence and must not be
// offered (the caller's redundancy filter, like the bootstrap margin
// skip).
func (dl *Delta) Add(f *hv.Vector, label, pred int) {
	if f.D() != dl.D {
		panic(fmt.Sprintf("online: delta feature dimension %d, accumulator %d", f.D(), dl.D))
	}
	if label < 0 || label >= dl.K || pred < 0 || pred >= dl.K {
		panic(fmt.Sprintf("online: delta labels (%d, %d) outside [0, %d)", label, pred, dl.K))
	}
	words := f.Words()
	la, pa := dl.Acc[label], dl.Acc[pred]
	for i := 0; i < dl.D; i++ {
		s := int32(-1)
		if words[i/64]>>(uint(i)%64)&1 == 1 {
			s = 1
		}
		la[i] += s
		if pred != label {
			pa[i] -= s
		}
	}
	dl.Counts[label]++
	dl.Seq++
}

// Samples returns the total absorbed sample count.
func (dl *Delta) Samples() int64 {
	var n int64
	for _, c := range dl.Counts {
		n += c
	}
	return n
}

// Clone deep-copies the delta.
func (dl *Delta) Clone() *Delta {
	c := &Delta{Replica: dl.Replica, Base: dl.Base, Epoch: dl.Epoch, Seq: dl.Seq,
		D: dl.D, K: dl.K, Counts: append([]int64(nil), dl.Counts...), Acc: make([][]int32, dl.K)}
	for i, row := range dl.Acc {
		c.Acc[i] = append([]int32(nil), row...)
	}
	return c
}

// merge adds o's evidence into dl (the bundling combine). Geometry must
// match; identity metadata (replica, epoch, seq) is the caller's business.
func (dl *Delta) merge(o *Delta) error {
	if o.D != dl.D || o.K != dl.K {
		return fmt.Errorf("online: merge geometry mismatch: %dx%d vs %dx%d", o.K, o.D, dl.K, dl.D)
	}
	for c := range dl.Acc {
		dl.Counts[c] += o.Counts[c]
		row, orow := dl.Acc[c], o.Acc[c]
		for i := range row {
			row[i] += orow[i]
		}
	}
	return nil
}

// Encode writes the delta in its binary wire form (magic, fixed header,
// little-endian counts and accumulator rows).
func (dl *Delta) Encode(w io.Writer) error {
	if dl.D <= 0 || dl.D > maxDeltaD || dl.K < 2 || dl.K > maxDeltaK {
		return fmt.Errorf("online: implausible delta geometry d=%d k=%d", dl.D, dl.K)
	}
	if len(dl.Replica) == 0 || len(dl.Replica) > maxDeltaReplica {
		return fmt.Errorf("online: delta replica name length %d outside [1, %d]", len(dl.Replica), maxDeltaReplica)
	}
	if _, err := w.Write(deltaMagic[:]); err != nil {
		return err
	}
	hdr := struct {
		Base, Epoch, Seq uint64
		D, K, RepLen     uint32
	}{dl.Base, dl.Epoch, dl.Seq, uint32(dl.D), uint32(dl.K), uint32(len(dl.Replica))}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if _, err := io.WriteString(w, dl.Replica); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, dl.Counts); err != nil {
		return err
	}
	for _, row := range dl.Acc {
		if err := binary.Write(w, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return nil
}

// DecodeDelta reads a delta written by Encode, bound-checking the declared
// geometry before allocating anything sized from it.
func DecodeDelta(r io.Reader) (*Delta, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("online: delta header: %w", err)
	}
	if magic != deltaMagic {
		return nil, fmt.Errorf("online: bad delta magic")
	}
	var hdr struct {
		Base, Epoch, Seq uint64
		D, K, RepLen     uint32
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("online: delta header: %w", err)
	}
	d, k := int(hdr.D), int(hdr.K)
	if d <= 0 || d > maxDeltaD || k < 2 || k > maxDeltaK || d*k > maxDeltaCells {
		return nil, fmt.Errorf("online: implausible delta geometry d=%d k=%d", d, k)
	}
	if hdr.RepLen == 0 || hdr.RepLen > maxDeltaReplica {
		return nil, fmt.Errorf("online: implausible delta replica name length %d", hdr.RepLen)
	}
	rep := make([]byte, hdr.RepLen)
	if _, err := io.ReadFull(r, rep); err != nil {
		return nil, fmt.Errorf("online: delta replica: %w", err)
	}
	dl := NewDelta(string(rep), hdr.Base, hdr.Epoch, d, k)
	dl.Seq = hdr.Seq
	if err := binary.Read(r, binary.LittleEndian, dl.Counts); err != nil {
		return nil, fmt.Errorf("online: delta counts: %w", err)
	}
	for c := range dl.Acc {
		if err := binary.Read(r, binary.LittleEndian, dl.Acc[c]); err != nil {
			return nil, fmt.Errorf("online: delta class %d: %w", c, err)
		}
	}
	return dl, nil
}

// Merger is the router-side convergence point: it remembers the newest
// delta state per replica and bundles them on demand. Offer is idempotent
// and order-insensitive (see the package comment for the CRDT argument),
// so a merger fed by a lossy, duplicating, reordering feedback plane
// reaches the same merged state as one fed perfectly.
type Merger struct {
	mu     sync.Mutex
	latest map[string]*Delta
	// offered/stale record ingestion behaviour for introspection.
	offered, stale int64
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{latest: make(map[string]*Delta)}
}

// Offer ingests one delta snapshot, keeping it only if it is newer than
// the stored state for its replica — (Epoch, Seq) lexicographic order.
// Returns whether the offer advanced anything: duplicates and stale
// re-deliveries return false and change nothing.
func (m *Merger) Offer(d *Delta) bool {
	if d == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.offered++
	cur, ok := m.latest[d.Replica]
	if ok && (cur.Epoch > d.Epoch || (cur.Epoch == d.Epoch && cur.Seq >= d.Seq)) {
		m.stale++
		return false
	}
	m.latest[d.Replica] = d.Clone()
	return true
}

// Bundle merges the newest per-replica deltas accumulated against base
// into one combined delta (bundling = element-wise addition; the order of
// the loop is irrelevant by commutativity). Deltas against other bases are
// excluded — their evidence may already be inside a model their replica
// adopted — and reported as skipped. Returns nil when no evidence matches.
func (m *Merger) Bundle(base uint64) (merged *Delta, skipped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.latest {
		if d.Base != base || d.Samples() == 0 {
			if d.Base != base {
				skipped++
			}
			continue
		}
		if merged == nil {
			merged = NewDelta("merged", base, 0, d.D, d.K)
		}
		if err := merged.merge(d); err != nil {
			// Geometry mismatches cannot happen between replicas of one
			// fleet (the registry config gate rejects them at Put); treat
			// the offending delta as skippable rather than poisoning the
			// merge.
			skipped++
		}
	}
	return merged, skipped
}

// Replicas returns how many distinct replicas have offered state.
func (m *Merger) Replicas() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.latest)
}

// Stats returns (offers ingested, offers discarded as stale/duplicate).
func (m *Merger) Stats() (offered, stale int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.offered, m.stale
}

// ApplyDelta folds merged evidence into a base model: candidate class
// memory = base class memory + lr * accumulator — one more bundling,
// which is exactly how the model was built in the first place. The
// candidate is finalised (binarised) with seed and the base is left
// untouched. The delta's Base fingerprint must match the model.
func ApplyDelta(base *hdc.Model, d *Delta, lr float64, seed uint64) (*hdc.Model, error) {
	if d.D != base.D || d.K != base.K {
		return nil, fmt.Errorf("online: delta geometry %dx%d does not match model %dx%d", d.K, d.D, base.K, base.D)
	}
	if fp := base.Fingerprint(); fp != d.Base {
		return nil, fmt.Errorf("online: delta base %016x does not match model fingerprint %016x", d.Base, fp)
	}
	if lr == 0 {
		lr = 1
	}
	cand := base.Clone()
	for c := range cand.Classes {
		acc, row := cand.Classes[c], d.Acc[c]
		for i := range acc {
			acc[i] += lr * float64(row[i])
		}
	}
	cand.Finalize(seed)
	return cand, nil
}
