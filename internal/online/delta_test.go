package online

import (
	"bytes"
	"math/rand"
	"testing"

	"hdface/internal/hv"
)

// randDelta builds a delta with deterministic pseudo-random evidence.
func randDelta(t *testing.T, replica string, base, epoch uint64, seed uint64, samples int) *Delta {
	t.Helper()
	r := hv.NewRNG(seed)
	d := NewDelta(replica, base, epoch, testD, 2)
	for i := 0; i < samples; i++ {
		label := r.Intn(2)
		d.Add(hv.NewRand(r, testD), label, 1-label)
	}
	return d
}

func deltasEqual(a, b *Delta) bool {
	if a.D != b.D || a.K != b.K {
		return false
	}
	for c := range a.Counts {
		if a.Counts[c] != b.Counts[c] {
			return false
		}
		for i := range a.Acc[c] {
			if a.Acc[c][i] != b.Acc[c][i] {
				return false
			}
		}
	}
	return true
}

// TestMergerCRDTLaws drives the bundling merge through the properties the
// fleet depends on: order-insensitivity (commutativity + associativity of
// the combine), idempotent duplicate delivery, and out-of-order
// supersession by (Epoch, Seq).
func TestMergerCRDTLaws(t *testing.T) {
	const base = 0xabcd
	states := []*Delta{
		randDelta(t, "r0", base, 1, 11, 9),
		randDelta(t, "r1", base, 1, 22, 5),
		randDelta(t, "r2", base, 3, 33, 13),
		randDelta(t, "r3", base, 2, 44, 1),
	}

	bundleOf := func(order []int, dupes bool) *Delta {
		m := NewMerger()
		for _, i := range order {
			m.Offer(states[i])
			if dupes {
				m.Offer(states[i]) // duplicate delivery must be a no-op
			}
		}
		merged, skipped := m.Bundle(base)
		if skipped != 0 {
			t.Fatalf("unexpected skipped=%d", skipped)
		}
		return merged
	}

	want := bundleOf([]int{0, 1, 2, 3}, false)
	perm := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		order := perm.Perm(len(states))
		got := bundleOf(order, trial%2 == 0)
		if !deltasEqual(want, got) {
			t.Fatalf("merge order %v (dupes=%v) changed the bundle", order, trial%2 == 0)
		}
	}

	// Out-of-order arrival: an older (Epoch, Seq) for a replica must not
	// displace a newer one, in either arrival order.
	older := randDelta(t, "r9", base, 1, 55, 3)
	newer := randDelta(t, "r9", base, 2, 66, 4)
	m1, m2 := NewMerger(), NewMerger()
	if !m1.Offer(newer) || m1.Offer(older) {
		t.Fatal("stale offer accepted after newer state")
	}
	if !m2.Offer(older) || !m2.Offer(newer) {
		t.Fatal("newer offer rejected")
	}
	b1, _ := m1.Bundle(base)
	b2, _ := m2.Bundle(base)
	if !deltasEqual(b1, b2) || !deltasEqual(b1, newer) {
		t.Fatal("out-of-order arrival changed the merged state")
	}
	if _, stale := m1.Stats(); stale != 1 {
		t.Fatalf("stale counter = %d, want 1", stale)
	}

	// Same epoch, lower seq is also stale (a re-delivered earlier pull).
	mid := newer.Clone()
	mid.Seq--
	if m2.Offer(mid) {
		t.Fatal("lower-seq same-epoch state accepted")
	}
}

// TestMergerExcludesForeignBases: evidence accumulated against another
// model must never fold into this base.
func TestMergerExcludesForeignBases(t *testing.T) {
	m := NewMerger()
	m.Offer(randDelta(t, "r0", 0xaaaa, 1, 1, 4))
	m.Offer(randDelta(t, "r1", 0xbbbb, 1, 2, 4))
	merged, skipped := m.Bundle(0xaaaa)
	if merged == nil || skipped != 1 {
		t.Fatalf("merged=%v skipped=%d, want evidence from exactly one replica", merged, skipped)
	}
	if merged.Samples() != 4 {
		t.Fatalf("merged samples = %d, want 4", merged.Samples())
	}
	if got, _ := m.Bundle(0xcccc); got != nil {
		t.Fatal("bundle of unknown base returned evidence")
	}
}

func TestDeltaEncodeRoundTrip(t *testing.T) {
	want := randDelta(t, "replica-7", 0xfeed, 5, 99, 17)
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replica != want.Replica || got.Base != want.Base ||
		got.Epoch != want.Epoch || got.Seq != want.Seq {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, want)
	}
	if !deltasEqual(want, got) {
		t.Fatal("round-tripped accumulator differs")
	}
}

// TestDecodeDeltaHostile: truncations, bad magic and implausible geometry
// must error without panicking or allocating absurdly.
func TestDecodeDeltaHostile(t *testing.T) {
	var buf bytes.Buffer
	if err := randDelta(t, "r", 1, 1, 3, 4).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	for cut := 0; cut < len(wire); cut += 7 {
		if _, err := DecodeDelta(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	if _, err := DecodeDelta(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Hostile geometry: D and K maxed out would imply a multi-terabyte
	// accumulator; the bound must trip before allocation.
	huge := append([]byte(nil), wire...)
	for i := 28; i < 36; i++ { // D and K header fields
		huge[i] = 0xff
	}
	if _, err := DecodeDelta(bytes.NewReader(huge)); err == nil {
		t.Fatal("implausible geometry accepted")
	}
}

// TestApplyDeltaMatchesDirectUpdate: folding a delta into the base model
// must equal applying the same mistake-driven ±1 updates directly to the
// float accumulators — the merge is the training rule, just deferred.
func TestApplyDeltaMatchesDirectUpdate(t *testing.T) {
	cs := newClusterStream(5, 0.1)
	reg := seededRegistry(t, cs, identity)
	base := reg.Live().Model
	fp := base.Fingerprint()

	d := NewDelta("r", fp, 1, testD, 2)
	type ev struct {
		f           *hv.Vector
		label, pred int
	}
	var evidence []ev
	for i := 0; i < 12; i++ {
		s := cs.sample(i % 2)
		evidence = append(evidence, ev{s.Feature, s.Label, 1 - s.Label})
		d.Add(s.Feature, s.Label, 1-s.Label)
	}

	cand, err := ApplyDelta(base, d, 1, 42)
	if err != nil {
		t.Fatal(err)
	}

	want := base.Clone()
	for _, e := range evidence {
		for i := 0; i < testD; i++ {
			s := -1.0
			if e.f.Bit(i) == 1 {
				s = 1
			}
			want.Classes[e.label][i] += s
			want.Classes[e.pred][i] -= s
		}
	}
	want.Finalize(42)
	for c := range want.Classes {
		for i := range want.Classes[c] {
			if want.Classes[c][i] != cand.Classes[c][i] {
				t.Fatalf("class %d dim %d: delta %v direct %v", c, i, cand.Classes[c][i], want.Classes[c][i])
			}
		}
		if want.Bin[c].Hamming(cand.Bin[c]) != 0 {
			t.Fatalf("class %d binarised form differs", c)
		}
	}

	// Base integrity: ApplyDelta must not mutate its input.
	if base.Fingerprint() != fp {
		t.Fatal("ApplyDelta mutated the base model")
	}

	// Wrong base: refuse to fold evidence into a model it wasn't
	// accumulated against.
	other := base.Clone()
	other.Classes[0][0] += 1
	if _, err := ApplyDelta(other, d, 1, 42); err == nil {
		t.Fatal("ApplyDelta accepted a mismatched base fingerprint")
	}
}

// TestAdoptGate: a pushed candidate no better than live is adopted (ties
// accepted — it carries other replicas' evidence), while one that tanks
// held-out accuracy is rejected, and a rejected push leaves the live
// model and the local delta untouched.
func TestAdoptGate(t *testing.T) {
	cs := newClusterStream(13, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{
		Registry: reg, Pipe: testConfig(), DeltaOnly: true, Replica: "r0",
		HoldoutEvery: 2, MinHoldout: 4, WindowSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		tr.Step(cs.sample(i % 2))
	}
	if tr.Stats().Rounds != 0 {
		t.Fatal("delta-only trainer ran a local refinement round")
	}

	// An anti-model (negated class memory) predicts everything wrong.
	live := reg.Live()
	bad := live.Model.Clone()
	for c := range bad.Classes {
		for i := range bad.Classes[c] {
			bad.Classes[c][i] = -bad.Classes[c][i]
		}
	}
	bad.Finalize(1)
	id, outcome, err := tr.Adopt(testConfig(), bad)
	if err != nil || outcome != "gate_rejected" || id != 0 {
		t.Fatalf("bad candidate: id=%d outcome=%q err=%v, want gate_rejected", id, outcome, err)
	}
	if reg.Live().ID != live.ID {
		t.Fatal("rejected push still swapped the live model")
	}

	// An identical candidate ties on holdout and must be adopted.
	id, outcome, err = tr.Adopt(testConfig(), live.Model.Clone())
	if err != nil || outcome != "promoted" || id == 0 {
		t.Fatalf("tie candidate: id=%d outcome=%q err=%v, want promoted", id, outcome, err)
	}
	if reg.Live().ID != id {
		t.Fatal("adoption did not promote the candidate")
	}
	// The delta rebased onto the adopted model.
	if d := tr.Delta(); d == nil || d.Base != reg.Live().Model.Fingerprint() || d.Samples() != 0 {
		t.Fatalf("delta after adoption = %+v, want empty accumulator rebased on the new live model", d)
	}
	st := tr.Stats()
	if st.Adoptions != 1 || st.AdoptRejections != 1 {
		t.Fatalf("stats = %+v, want one adoption and one rejection", st)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cs := newClusterStream(9, 0.1)
	reg := seededRegistry(t, cs, identity)
	m := reg.Live().Model
	fp := m.Fingerprint()
	if m.Clone().Fingerprint() != fp {
		t.Fatal("clone fingerprints differently")
	}
	c := m.Clone()
	c.Classes[1][7] += 0.5
	if c.Fingerprint() == fp {
		t.Fatal("accumulator change invisible to fingerprint")
	}
	c2 := m.Clone()
	c2.Bin[0].SetBit(3, 1-c2.Bin[0].Bit(3))
	if c2.Fingerprint() == fp {
		t.Fatal("binarised-bit change invisible to fingerprint")
	}
}
