package online

import (
	"sync"
	"testing"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/registry"
)

const testD = 256

func testConfig() hdface.Config {
	return hdface.Config{D: testD, WorkingSize: 16, Workers: 1, Seed: 7}
}

// clusterStream builds two class prototypes and a generator of noisy
// members.
type clusterStream struct {
	r      *hv.RNG
	protos []*hv.Vector
	flip   float64
}

func newClusterStream(seed uint64, flip float64) *clusterStream {
	r := hv.NewRNG(seed)
	return &clusterStream{
		r:      r,
		protos: []*hv.Vector{hv.NewRand(r, testD), hv.NewRand(r, testD)},
		flip:   flip,
	}
}

func (c *clusterStream) sample(label int) Sample {
	v := c.protos[label].Clone()
	v.Xor(v, hv.NewRandBiased(c.r, testD, c.flip))
	return Sample{Feature: v, Label: label}
}

// seededRegistry returns an in-memory registry with a model trained on the
// stream's clusters promoted live.
func seededRegistry(t *testing.T, cs *clusterStream, labelOf func(int) int) *registry.Registry {
	t.Helper()
	reg, err := registry.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	var feats []*hv.Vector
	var labels []int
	for i := 0; i < 40; i++ {
		s := cs.sample(i % 2)
		feats = append(feats, s.Feature)
		labels = append(labels, labelOf(s.Label))
	}
	m, err := hdc.Train(feats, labels, 2, hdc.TrainOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Finalize(testConfig().Seed ^ 0xf1a1)
	id, err := reg.Put(testConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(id); err != nil {
		t.Fatal(err)
	}
	return reg
}

func identity(l int) int { return l }
func flipped(l int) int  { return 1 - l }

func TestStepAdaptsToLabelDrift(t *testing.T) {
	cs := newClusterStream(3, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{
		Registry:  reg,
		Pipe:      testConfig(),
		BatchSize: 16, WindowSize: 16, HoldoutEvery: 3, MinHoldout: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-drift feedback agrees with the model: no promotion should fire
	// (the shadow gate demands strict improvement).
	for i := 0; i < 64; i++ {
		if id := tr.Step(cs.sample(i % 2)); id != 0 {
			t.Fatalf("promotion %d on agreeing feedback", id)
		}
	}
	// Labels flip: the world changed. Feedback now disagrees with live.
	promoted := uint64(0)
	for i := 0; i < 400 && promoted == 0; i++ {
		s := cs.sample(i % 2)
		s.Label = flipped(s.Label)
		promoted = tr.Step(s)
	}
	if promoted == 0 {
		t.Fatal("no promotion after sustained label drift")
	}
	live := reg.Live()
	if live.ID != promoted {
		t.Fatalf("live is %d, want promoted %d", live.ID, promoted)
	}
	// The promoted model classifies under the new labelling.
	correct := 0
	for i := 0; i < 50; i++ {
		s := cs.sample(i % 2)
		if live.Model.Predict(s.Feature) == flipped(s.Label) {
			correct++
		}
	}
	if acc := float64(correct) / 50; acc < 0.9 {
		t.Fatalf("promoted model accuracy %v under drifted labels", acc)
	}
	st := tr.Stats()
	if st.Promotions == 0 || st.Rounds == 0 {
		t.Fatalf("stats did not record the adaptation: %+v", st)
	}
}

func TestDriftDetectorFires(t *testing.T) {
	cs := newClusterStream(5, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{
		Registry: reg,
		Pipe:     testConfig(),
		// Batch large enough that only drift can trigger a round early.
		// Clean 10%-flip samples carry margins well above 0.2; a 50/50
		// prototype mix collapses them towards 1/sqrt(D).
		BatchSize: 10000, WindowSize: 16, DriftThreshold: 0.2,
		HoldoutEvery: 4, MinHoldout: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Near-ambiguous inputs: equal mix of both prototypes collapses the
	// top-1/top-2 margin.
	mix := newClusterStream(5, 0.5)
	for i := 0; i < 64; i++ {
		tr.Step(mix.sample(i % 2))
	}
	if tr.Stats().DriftEvents == 0 {
		t.Fatal("margin collapse did not register as drift")
	}
}

func TestShadowGateRejectsWorseCandidate(t *testing.T) {
	cs := newClusterStream(7, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{
		Registry:  reg,
		Pipe:      testConfig(),
		BatchSize: 8, WindowSize: 16, HoldoutEvery: 3,
		// A serious gate: enough held-out evidence and a real margin, so
		// a lucky candidate cannot squeak past on sampling noise.
		MinHoldout: 16, PromoteEpsilon: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poisoned feedback: every sample routed to the training batch gets a
	// flipped label, while every HoldoutEvery-th (the ones the trainer
	// diverts to shadow evaluation) stays truthful. Candidates learn the
	// inverted mapping, score near zero on the clean holdout, and the
	// gate must reject them all.
	before := reg.Live().ID
	for i := 1; i <= 200; i++ {
		s := cs.sample(i % 2)
		if i%3 != 0 { // trainer's HoldoutEvery=3 routing, by seen count
			s.Label = 1 - s.Label
		}
		tr.Step(s)
	}
	if reg.Live().ID != before {
		t.Fatal("random-label feedback caused a promotion")
	}
	if tr.Stats().Rounds == 0 {
		t.Fatal("no rounds ran at all — gate never tested")
	}
}

func TestStepIgnoresInvalidSamples(t *testing.T) {
	cs := newClusterStream(11, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{Registry: reg, Pipe: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	r := hv.NewRNG(1)
	if id := tr.Step(Sample{Feature: nil, Label: 0}); id != 0 {
		t.Fatal("nil feature promoted something")
	}
	if id := tr.Step(Sample{Feature: hv.NewRand(r, 64), Label: 0}); id != 0 {
		t.Fatal("wrong-D feature promoted something")
	}
	if id := tr.Step(Sample{Feature: hv.NewRand(r, testD), Label: 7}); id != 0 {
		t.Fatal("out-of-range label promoted something")
	}
	if tr.Stats().Seen != 0 {
		t.Fatal("invalid samples counted as seen")
	}
}

func TestEnqueueBackpressureAndClose(t *testing.T) {
	cs := newClusterStream(13, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{Registry: reg, Pipe: testConfig(), QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the queue fills and then drops.
	if err := tr.Enqueue(cs.sample(0)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Enqueue(cs.sample(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Enqueue(cs.sample(0)); err == nil {
		t.Fatal("overfull queue accepted a sample")
	}
	if tr.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Stats().Dropped)
	}
	tr.Close()
	if err := tr.Enqueue(cs.sample(0)); err == nil {
		t.Fatal("closed trainer accepted a sample")
	}
	// Close is idempotent and concurrent-safe.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); tr.Close() }()
	}
	wg.Wait()
}

func TestStartDrainsQueueOnClose(t *testing.T) {
	cs := newClusterStream(17, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{Registry: reg, Pipe: testConfig(), QueueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	for i := 0; i < 32; i++ {
		if err := tr.Enqueue(cs.sample(i % 2)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close() // waits for the consumer: everything enqueued is processed
	if seen := tr.Stats().Seen; seen != 32 {
		t.Fatalf("seen = %d after Close, want 32", seen)
	}
}
