// Package online adapts a served hdface model to drift using the paper's
// own learning rule. Feedback samples (a feature hypervector plus the
// correct label) stream into a bounded queue; the trainer refines a clone
// of the live model with the existing mistake-weighted update pass, and a
// shadow-evaluation gate promotes the candidate through the registry only
// if it beats the live model on a held-out window. Drift is detected from
// the live model's own similarity margins (top-1 minus top-2 score): a
// collapsing margin is visible before accuracy is, because HDC scores
// degrade gracefully rather than flipping hard.
package online

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"hdface"
	"hdface/internal/hdc"
	"hdface/internal/hv"
	"hdface/internal/obs"
	"hdface/internal/obs/trace"
	"hdface/internal/registry"
)

var (
	obsIngested = obs.NewCounter("hdface_online_ingested_total",
		"Feedback samples accepted into the online-learning queue.")
	obsDropped = obs.NewCounter("hdface_online_dropped_total",
		"Feedback samples rejected because the queue was full.")
	obsRounds = obs.NewCounter("hdface_online_rounds_total",
		"Refinement rounds (candidate trained and shadow-evaluated).")
	obsPromotions = obs.NewCounter("hdface_online_promotions_total",
		"Candidates that beat the live model and were promoted.")
	obsRejections = obs.NewCounter("hdface_online_rejections_total",
		"Candidates rejected by the shadow-evaluation gate.")
	obsDrift = obs.NewCounter("hdface_online_drift_events_total",
		"Drift detections (mean similarity margin below threshold).")
	obsDeltaSamples = obs.NewCounter("hdface_online_delta_samples_total",
		"Mis-predicted feedback samples absorbed into the local delta.")
	obsAdoptions = obs.NewCounter("hdface_online_adoptions_total",
		"Pushed fleet candidates that passed the adoption gate.")
	obsAdoptRejections = obs.NewCounter("hdface_online_adopt_rejections_total",
		"Pushed fleet candidates rejected by the adoption gate.")
)

// Sample is one unit of feedback: the feature hypervector of an image the
// model saw (or will see) and its correct label.
type Sample struct {
	Feature *hv.Vector
	Label   int
}

// Config parameterises a Trainer. Zero values take the documented
// defaults.
type Config struct {
	// Registry stores candidates and publishes promotions. Required.
	Registry *registry.Registry
	// Pipe is the pipeline config new versions are stored under; it must
	// be registry-compatible with the versions already there.
	Pipe hdface.Config
	// QueueSize bounds the feedback queue (default 256). A full queue
	// drops new samples — feedback is advisory, serving is not.
	QueueSize int
	// BatchSize triggers a refinement round when this many samples have
	// accumulated (default 32).
	BatchSize int
	// WindowSize is the rolling similarity-margin window used for drift
	// detection (default 64).
	WindowSize int
	// DriftThreshold: when the window is full and the mean live-model
	// margin falls below it, a refinement round fires immediately
	// (default 0.05).
	DriftThreshold float64
	// HoldoutEvery diverts every n-th sample to the held-out shadow
	// evaluation set instead of the training batch (default 4).
	HoldoutEvery int
	// HoldoutSize bounds the held-out ring (default 64).
	HoldoutSize int
	// MinHoldout is the smallest held-out set a promotion decision may
	// be based on; with fewer samples the candidate is rejected
	// (default 8).
	MinHoldout int
	// Epochs of the mistake-weighted update pass per round (default 3).
	Epochs int
	// Opts configures the update rule (LR, margins). Candidate
	// re-binarisation uses Pipe.Seed, matching Pipeline.Fit.
	Opts hdc.TrainOpts
	// PromoteEpsilon is the margin by which a candidate's held-out
	// accuracy must exceed the live model's to be promoted (default 0:
	// strictly better).
	PromoteEpsilon float64
	// Replica names this trainer in the delta it exports to a fleet
	// router (default "local"). Replica names must be unique within a
	// fleet: the router's merger keys per-replica state on them.
	Replica string
	// DeltaOnly suppresses local refinement rounds: feedback still feeds
	// the drift window, the held-out ring and the delta accumulator, but
	// model updates only arrive via Adopt (the router's merged pushes).
	// Fleet replicas run delta-only so they keep a common base model
	// between merges — locally diverged bases would make their deltas
	// unmergeable.
	DeltaOnly bool
	// AdoptEpsilon is how much held-out accuracy a pushed candidate may
	// LOSE versus the live model and still be adopted (default 0: ties
	// accepted). Adoption is deliberately laxer than promotion — the
	// merged model carries other replicas' evidence that this replica's
	// holdout cannot see — but still bounds merge-induced regressions.
	AdoptEpsilon float64
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.05
	}
	if c.HoldoutEvery <= 0 {
		c.HoldoutEvery = 4
	}
	if c.HoldoutSize <= 0 {
		c.HoldoutSize = 64
	}
	if c.MinHoldout <= 0 {
		c.MinHoldout = 8
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.Replica == "" {
		c.Replica = "local"
	}
	return c
}

// Stats is a point-in-time snapshot of trainer activity, safe to read
// concurrently with ingestion.
type Stats struct {
	Seen            int64 `json:"seen"`
	Dropped         int64 `json:"dropped"`
	Rounds          int64 `json:"rounds"`
	Promotions      int64 `json:"promotions"`
	Rejections      int64 `json:"rejections"`
	DriftEvents     int64 `json:"drift_events"`
	DeltaSamples    int64 `json:"delta_samples"`
	Adoptions       int64 `json:"adoptions"`
	AdoptRejections int64 `json:"adopt_rejections"`
}

// Trainer consumes feedback and drives candidate refinement. Streaming
// state (batch, held-out ring, margin window) is owned by whichever
// goroutine calls Step — either the one launched by Start, or the caller
// itself in synchronous use (benchmarks). The two modes must not be
// mixed. Adopt may be called from any goroutine (it is how a fleet
// router's merged pushes arrive); stepMu serialises it against Step.
type Trainer struct {
	cfg Config
	reg *registry.Registry

	queue   chan Sample
	mu      sync.Mutex
	closed  bool
	started atomic.Bool
	done    chan struct{}

	// stepMu serialises the streaming state mutators: Step (trainer
	// goroutine) and Adopt (any goroutine). Uncontended in the common
	// case — Adopt only arrives on a merge push.
	stepMu sync.Mutex

	// Step-owned streaming state (under stepMu).
	batch      []Sample
	holdout    []Sample
	holdoutPos int
	margins    []float64
	marginPos  int
	marginN    int

	// Delta accumulation for the fleet feedback plane. deltaMu is taken
	// inside stepMu (never the reverse) so Delta() can snapshot without
	// waiting out a refinement round.
	deltaMu sync.Mutex
	delta   *Delta
	epoch   uint64
	// fpVersion/fpValue cache the live model's fingerprint by registry
	// version ID so Step doesn't rehash K*D floats per sample.
	fpVersion uint64
	fpValue   uint64

	seen, dropped, rounds, promotions, rejections, drift atomic.Int64
	deltaSamples, adoptions, adoptRejections             atomic.Int64
}

// New validates the config and builds a trainer (not yet running).
func New(cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("online: Config.Registry is required")
	}
	return &Trainer{
		cfg:     cfg,
		reg:     cfg.Registry,
		queue:   make(chan Sample, cfg.QueueSize),
		done:    make(chan struct{}),
		margins: make([]float64, cfg.WindowSize),
	}, nil
}

// Enqueue submits one feedback sample without blocking. A full queue or a
// closed trainer returns an error and drops the sample.
func (t *Trainer) Enqueue(s Sample) error {
	if s.Feature == nil {
		return fmt.Errorf("online: nil feature")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("online: trainer closed")
	}
	select {
	case t.queue <- s:
		obsIngested.Inc()
		return nil
	default:
		t.dropped.Add(1)
		obsDropped.Inc()
		return fmt.Errorf("online: feedback queue full")
	}
}

// Start launches the consumer goroutine. Call at most once.
func (t *Trainer) Start() {
	if !t.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(t.done)
		for s := range t.queue {
			t.Step(s)
		}
	}()
}

// Close stops ingestion, drains the queue and waits for the consumer to
// exit. Idempotent and safe to call concurrently.
func (t *Trainer) Close() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.queue)
	}
	t.mu.Unlock()
	if t.started.Load() {
		<-t.done
	}
}

// Stats snapshots the trainer counters.
func (t *Trainer) Stats() Stats {
	return Stats{
		Seen:            t.seen.Load(),
		Dropped:         t.dropped.Load(),
		Rounds:          t.rounds.Load(),
		Promotions:      t.promotions.Load(),
		Rejections:      t.rejections.Load(),
		DriftEvents:     t.drift.Load(),
		DeltaSamples:    t.deltaSamples.Load(),
		Adoptions:       t.adoptions.Load(),
		AdoptRejections: t.adoptRejections.Load(),
	}
}

// Replica returns this trainer's fleet replica name.
func (t *Trainer) Replica() string { return t.cfg.Replica }

// Delta returns a snapshot of the local feedback accumulator, or nil if
// no feedback has arrived since the trainer started (the accumulator is
// created lazily against the first live model Step sees). Safe to call
// from any goroutine; the snapshot is a deep copy.
func (t *Trainer) Delta() *Delta {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	if t.delta == nil {
		return nil
	}
	return t.delta.Clone()
}

// liveFingerprint returns the live model's content fingerprint, cached by
// registry version ID so steady-state Steps don't rehash the model.
func (t *Trainer) liveFingerprint(live *registry.Version) uint64 {
	if t.fpVersion != live.ID || t.fpVersion == 0 {
		t.fpVersion, t.fpValue = live.ID, live.Model.Fingerprint()
	}
	return t.fpValue
}

// rebaseDelta resets the accumulator onto the (new) live model: evidence
// gathered against the old base is either already inside the new model or
// no longer safe to fold in, so the epoch advances and the sums clear.
// Callers hold stepMu.
func (t *Trainer) rebaseDelta(live *registry.Version) {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	t.epoch++
	t.delta = NewDelta(t.cfg.Replica, t.liveFingerprint(live), t.epoch,
		live.Model.D, live.Model.K)
}

// Step processes one feedback sample synchronously: it updates the drift
// window with the live model's margin, routes the sample to the training
// batch or the held-out ring, and runs a refinement round when the batch
// fills or drift fires. It returns the ID of a newly promoted version, or
// 0. Step must only be called from one goroutine (see Trainer doc).
func (t *Trainer) Step(s Sample) uint64 {
	t.stepMu.Lock()
	defer t.stepMu.Unlock()
	live := t.reg.Live()
	if live == nil || s.Feature == nil || s.Feature.D() != live.Model.D {
		return 0 // nothing to adapt, or sample incompatible with live model
	}
	if s.Label < 0 || s.Label >= live.Model.K {
		return 0
	}
	t.seen.Add(1)
	n := t.seen.Load()

	// Drift signal: the live model's top-1 minus top-2 similarity on this
	// sample. Margins shrink as class memories drift off the data.
	scores := live.Model.Scores(s.Feature)
	pred, top1, top2 := 0, -1.0, -1.0
	for c, sc := range scores {
		if sc > top1 {
			top1, top2 = sc, top1
			pred = c
		} else if sc > top2 {
			top2 = sc
		}
	}
	t.margins[t.marginPos] = top1 - top2
	t.marginPos = (t.marginPos + 1) % len(t.margins)
	if t.marginN < len(t.margins) {
		t.marginN++
	}

	if n%int64(t.cfg.HoldoutEvery) == 0 {
		// Held-out samples gate promotions and adoptions; keeping them out
		// of the delta keeps the gate's evidence independent of the models
		// it judges.
		if len(t.holdout) < t.cfg.HoldoutSize {
			t.holdout = append(t.holdout, s)
		} else {
			t.holdout[t.holdoutPos] = s
			t.holdoutPos = (t.holdoutPos + 1) % len(t.holdout)
		}
		return 0
	}

	// Fleet feedback plane: mis-predicted samples carry evidence the live
	// model lacks; absorb their ±1 feature bits into the local delta for
	// the router's bundling merge. Correct predictions are redundant with
	// the class memory and would only inflate it.
	if pred != s.Label {
		t.deltaMu.Lock()
		// Rebase lazily on first use and whenever the live model changed
		// underneath us (an operator promote/rollback does not go through
		// round or Adopt, but still invalidates the accumulated evidence).
		if t.delta == nil || t.delta.Base != t.liveFingerprint(live) {
			t.epoch++
			t.delta = NewDelta(t.cfg.Replica, t.liveFingerprint(live), t.epoch,
				live.Model.D, live.Model.K)
		}
		t.delta.Add(s.Feature, s.Label, pred)
		t.deltaMu.Unlock()
		t.deltaSamples.Add(1)
		obsDeltaSamples.Inc()
	}

	if !t.cfg.DeltaOnly {
		t.batch = append(t.batch, s)
	}

	drifted := false
	if t.marginN == len(t.margins) {
		var sum float64
		for _, m := range t.margins {
			sum += m
		}
		if sum/float64(len(t.margins)) < t.cfg.DriftThreshold {
			drifted = true
			t.drift.Add(1)
			obsDrift.Inc()
			t.marginN, t.marginPos = 0, 0 // re-arm the detector
		}
	}
	if t.cfg.DeltaOnly {
		return 0 // refinement arrives via Adopt, not local rounds
	}
	if len(t.batch) >= t.cfg.BatchSize || (drifted && len(t.batch) > 0) {
		return t.round(live)
	}
	return 0
}

// round refines a candidate from the live model on the accumulated batch
// and promotes it if it survives the shadow-evaluation gate. Each round
// records a "train_round" trace (mini_batch → shadow_eval → promote spans
// with an outcome attribute) so /debug/traces explains why a candidate
// was or was not promoted.
func (t *Trainer) round(live *registry.Version) uint64 {
	t.rounds.Add(1)
	obsRounds.Inc()
	tr := trace.New("train_round", "")
	defer tr.Finish()
	tr.SetAttr("base_version", strconv.FormatUint(live.ID, 10))
	reject := func(outcome string) uint64 {
		t.rejections.Add(1)
		obsRejections.Inc()
		tr.SetAttr("outcome", outcome)
		return 0
	}

	feats := make([]*hv.Vector, len(t.batch))
	labels := make([]int, len(t.batch))
	for i, s := range t.batch {
		feats[i], labels[i] = s.Feature, s.Label
	}
	t.batch = t.batch[:0]

	bsp := tr.StartSpan("mini_batch")
	bsp.SetAttrInt("samples", int64(len(feats)))
	bsp.SetAttrInt("epochs", int64(t.cfg.Epochs))
	cand := live.Model.Clone()
	for e := 0; e < t.cfg.Epochs; e++ {
		mistakes, err := cand.Update(feats, labels, t.cfg.Opts)
		if err != nil {
			bsp.End()
			tr.SetError(true)
			return reject("update_error")
		}
		if mistakes == 0 {
			break
		}
	}
	bsp.End()

	// Shadow evaluation: the candidate must beat the live model on the
	// held-out window. With too little held-out evidence, reject — a
	// wrong promotion serves bad predictions to everyone.
	if len(t.holdout) < t.cfg.MinHoldout {
		return reject("holdout_too_small")
	}
	esp := tr.StartSpan("shadow_eval")
	esp.SetAttrInt("holdout", int64(len(t.holdout)))
	liveAcc := accuracy(live.Model, t.holdout)
	candAcc := accuracy(cand, t.holdout)
	esp.SetAttr("live_acc", strconv.FormatFloat(liveAcc, 'g', 4, 64))
	esp.SetAttr("cand_acc", strconv.FormatFloat(candAcc, 'g', 4, 64))
	esp.End()
	if candAcc <= liveAcc+t.cfg.PromoteEpsilon {
		return reject("shadow_eval_lost")
	}

	psp := tr.StartSpan("promote")
	cand.Finalize(t.cfg.Pipe.Seed ^ 0xf1a1)
	id, err := t.reg.Put(t.cfg.Pipe, cand)
	if err != nil {
		psp.End()
		tr.SetError(true)
		return reject("put_error")
	}
	if err := t.reg.Promote(id); err != nil {
		psp.End()
		tr.SetError(true)
		return reject("promote_error")
	}
	psp.SetAttrInt("version", int64(id))
	psp.End()
	tr.SetAttr("outcome", "promoted")
	t.promotions.Add(1)
	obsPromotions.Inc()
	// The world changed: old margins describe the previous model, and the
	// delta's evidence is now inside the live class memory.
	t.marginN, t.marginPos = 0, 0
	if nowLive := t.reg.Live(); nowLive != nil {
		t.rebaseDelta(nowLive)
	}
	return id
}

// Adopt runs a pushed candidate — typically the fleet router's merged
// model — through the replica-side adoption gate: shadow evaluation on
// the held-out ring, accepting unless the candidate is worse than the
// live model by more than AdoptEpsilon. On success the candidate is
// stored, promoted and the local delta rebases onto it. The returned
// outcome is one of "promoted", "no_holdout" (accepted without evidence),
// or "gate_rejected"; id is non-zero only when promoted. Safe to call
// from any goroutine.
func (t *Trainer) Adopt(cfg hdface.Config, cand *hdc.Model) (id uint64, outcome string, err error) {
	t.stepMu.Lock()
	defer t.stepMu.Unlock()
	tr := trace.New("delta_adopt", "")
	defer tr.Finish()

	live := t.reg.Live()
	if live != nil && len(t.holdout) >= t.cfg.MinHoldout {
		esp := tr.StartSpan("shadow_eval")
		esp.SetAttrInt("holdout", int64(len(t.holdout)))
		liveAcc := accuracy(live.Model, t.holdout)
		candAcc := accuracy(cand, t.holdout)
		esp.SetAttr("live_acc", strconv.FormatFloat(liveAcc, 'g', 4, 64))
		esp.SetAttr("cand_acc", strconv.FormatFloat(candAcc, 'g', 4, 64))
		esp.End()
		if candAcc < liveAcc-t.cfg.AdoptEpsilon {
			tr.SetAttr("outcome", "gate_rejected")
			t.adoptRejections.Add(1)
			obsAdoptRejections.Inc()
			return 0, "gate_rejected", nil
		}
		outcome = "promoted"
	} else {
		// No live model or too little held-out evidence to judge: adopt.
		// The router's merge already starts from a model every replica's
		// promote gate accepted, so blind adoption is bounded-risk, and
		// refusing would wedge a fresh replica out of the fleet forever.
		outcome = "no_holdout"
	}

	psp := tr.StartSpan("promote")
	id, err = t.reg.Put(cfg, cand)
	if err == nil {
		err = t.reg.Promote(id)
	}
	if err != nil {
		psp.End()
		tr.SetError(true)
		tr.SetAttr("outcome", "promote_error")
		return 0, "promote_error", err
	}
	psp.SetAttrInt("version", int64(id))
	psp.End()
	tr.SetAttr("outcome", outcome)
	t.adoptions.Add(1)
	obsAdoptions.Inc()
	t.marginN, t.marginPos = 0, 0
	if nowLive := t.reg.Live(); nowLive != nil {
		t.rebaseDelta(nowLive)
	}
	return id, outcome, nil
}

func accuracy(m *hdc.Model, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.Feature) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
