package online

import (
	"testing"

	"hdface/internal/obs/trace"
)

// TestRoundLeavesTrace drives the trainer through a rejected and a
// promoted refinement round with tracing enabled, and checks each round
// left a train_round trace whose outcome attribute and span tree explain
// the decision.
func TestRoundLeavesTrace(t *testing.T) {
	trace.Enable()
	defer func() {
		trace.Disable()
		trace.Reset()
	}()
	trace.Reset()

	cs := newClusterStream(3, 0.1)
	reg := seededRegistry(t, cs, identity)
	tr, err := New(Config{
		Registry:  reg,
		Pipe:      testConfig(),
		BatchSize: 16, WindowSize: 16, HoldoutEvery: 3, MinHoldout: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Agreeing feedback: rounds run but the shadow gate rejects.
	for i := 0; i < 64; i++ {
		tr.Step(cs.sample(i % 2))
	}
	// Flipped labels: eventually a candidate wins and is promoted.
	promoted := uint64(0)
	for i := 0; i < 400 && promoted == 0; i++ {
		s := cs.sample(i % 2)
		s.Label = flipped(s.Label)
		promoted = tr.Step(s)
	}
	if promoted == 0 {
		t.Fatal("no promotion; trace assertions would be vacuous")
	}

	exp := trace.Snapshot(trace.Filter{Kind: "train_round", Limit: 256})
	if len(exp.Traces) == 0 {
		t.Fatal("no train_round traces collected")
	}
	outcomes := map[string]int{}
	for _, et := range exp.Traces {
		outcomes[et.Attrs["outcome"]]++
		spans := map[string]bool{}
		for _, sp := range et.Spans {
			spans[sp.Name] = true
		}
		if !spans["mini_batch"] {
			t.Fatalf("round trace missing mini_batch span: %+v", et.Spans)
		}
		if et.Attrs["outcome"] == "promoted" && (!spans["shadow_eval"] || !spans["promote"]) {
			t.Fatalf("promoted round missing shadow_eval/promote spans: %+v", et.Spans)
		}
	}
	if outcomes["promoted"] == 0 {
		t.Fatalf("no promoted round trace: %v", outcomes)
	}
	if outcomes["shadow_eval_lost"] == 0 && outcomes["holdout_too_small"] == 0 {
		t.Fatalf("no rejected round trace: %v", outcomes)
	}

	// The promotion also left a registry_swap trace.
	swaps := trace.Snapshot(trace.Filter{Kind: "registry_swap", Limit: 16})
	found := false
	for _, et := range swaps.Traces {
		if et.Attrs["op"] == "promote" {
			found = true
		}
	}
	if !found {
		t.Fatalf("promotion left no registry_swap trace: %+v", swaps.Traces)
	}
}
