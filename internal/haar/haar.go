// Package haar implements HAAR-like rectangle features, the second feature
// extraction family the paper names (Section 2) as sharing HDC-compatible
// arithmetic. A HAAR feature is the difference between the mean intensities
// of adjacent rectangles; the classical extractor computes it with an
// integral image, and the hyperspace extractor computes the same quantity
// with stochastic weighted averages over pixel hypervectors — rectangle
// means and differences are exactly the operations package stoch provides.
package haar

import (
	"fmt"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

// Kind enumerates the classic HAAR feature shapes.
type Kind int

// Feature shapes: two-rectangle (horizontal/vertical), three-rectangle
// (horizontal/vertical) and four-rectangle (diagonal).
const (
	TwoH Kind = iota
	TwoV
	ThreeH
	ThreeV
	Four
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TwoH:
		return "two-h"
	case TwoV:
		return "two-v"
	case ThreeH:
		return "three-h"
	case ThreeV:
		return "three-v"
	case Four:
		return "four"
	}
	return "unknown"
}

// Feature is one rectangle feature instance at (X, Y) with size (W, H) in a
// template window.
type Feature struct {
	Kind       Kind
	X, Y, W, H int
}

// Grid enumerates a deterministic feature bank over a win x win template:
// every kind at every position/size on a stride-s lattice.
func Grid(win, minSize, stride int) []Feature {
	var out []Feature
	for k := Kind(0); k < numKinds; k++ {
		for h := minSize; h <= win; h += minSize {
			for w := minSize; w <= win; w += minSize {
				if !divisible(k, w, h) {
					continue
				}
				for y := 0; y+h <= win; y += stride {
					for x := 0; x+w <= win; x += stride {
						out = append(out, Feature{Kind: k, X: x, Y: y, W: w, H: h})
					}
				}
			}
		}
	}
	return out
}

// divisible reports whether the kind's sub-rectangles tile (w, h) exactly.
func divisible(k Kind, w, h int) bool {
	switch k {
	case TwoH:
		return w%2 == 0
	case TwoV:
		return h%2 == 0
	case ThreeH:
		return w%3 == 0
	case ThreeV:
		return h%3 == 0
	case Four:
		return w%2 == 0 && h%2 == 0
	}
	return false
}

// rects returns the positive- and negative-weight rectangles of f as
// (x0, y0, x1, y1) boxes.
func (f Feature) rects() (pos, neg [][4]int) {
	x, y, w, h := f.X, f.Y, f.W, f.H
	switch f.Kind {
	case TwoH:
		pos = [][4]int{{x, y, x + w/2, y + h}}
		neg = [][4]int{{x + w/2, y, x + w, y + h}}
	case TwoV:
		pos = [][4]int{{x, y, x + w, y + h/2}}
		neg = [][4]int{{x, y + h/2, x + w, y + h}}
	case ThreeH:
		t := w / 3
		pos = [][4]int{{x, y, x + t, y + h}, {x + 2*t, y, x + w, y + h}}
		neg = [][4]int{{x + t, y, x + 2*t, y + h}}
	case ThreeV:
		t := h / 3
		pos = [][4]int{{x, y, x + w, y + t}, {x, y + 2*t, x + w, y + h}}
		neg = [][4]int{{x, y + t, x + w, y + 2*t}}
	case Four:
		pos = [][4]int{{x, y, x + w/2, y + h/2}, {x + w/2, y + h/2, x + w, y + h}}
		neg = [][4]int{{x + w/2, y, x + w, y + h/2}, {x, y + h/2, x + w/2, y + h}}
	}
	return
}

// Eval computes the classical feature value on the integral image: the
// difference of the mean normalised intensities of the positive and
// negative regions, in [-1, 1].
func (f Feature) Eval(it *imgproc.Integral) float64 {
	pos, neg := f.rects()
	return (meanOver(it, pos) - meanOver(it, neg)) / 255
}

// EvalAt evaluates the feature translated to the window whose top-left
// corner is (x0, y0) on a full-image integral. It equals Eval on an
// integral of the cropped window, but shares one integral image across
// every window of a detection sweep instead of rebuilding it per window.
func (f Feature) EvalAt(it *imgproc.Integral, x0, y0 int) float64 {
	g := f
	g.X += x0
	g.Y += y0
	return g.Eval(it)
}

func meanOver(it *imgproc.Integral, boxes [][4]int) float64 {
	var sum float64
	var area int64
	for _, b := range boxes {
		w := int64(b[2] - b[0])
		h := int64(b[3] - b[1])
		sum += float64(it.Rect(b[0], b[1], b[2], b[3]))
		area += w * h
	}
	if area == 0 {
		return 0
	}
	return sum / float64(area)
}

// Extractor computes classical HAAR feature vectors for a fixed bank.
type Extractor struct {
	Win  int
	Bank []Feature
}

// New returns a classical extractor with the default bank for win-sized
// windows.
func New(win int) *Extractor {
	return &Extractor{Win: win, Bank: Grid(win, win/4, win/8)}
}

// Features evaluates the whole bank on an image (resized to the template
// window if needed).
func (e *Extractor) Features(img *imgproc.Image) []float64 {
	if img.W != e.Win || img.H != e.Win {
		img = img.Resize(e.Win, e.Win)
	}
	it := imgproc.NewIntegral(img)
	out := make([]float64, len(e.Bank))
	for i, f := range e.Bank {
		out[i] = f.Eval(it)
	}
	return out
}

// HD computes HAAR features fully in hyperspace. Rectangle means are built
// as balanced trees of stochastic weighted averages over pixel
// hypervectors, and the feature is the scaled stochastic difference of the
// positive and negative means — the exact construction pattern of the
// paper's Section 4 arithmetic, with no gradient or square root needed.
type HD struct {
	Win    int
	Bank   []Feature
	codec  *stoch.Codec
	rng    *hv.RNG
	levels []*hv.Vector
	ids    []*hv.Vector
	// Pixels counts mean-tree leaf fetches for the hardware model.
	Pixels int64
}

// NewHD builds a hyperspace HAAR extractor over the codec with the default
// bank. Rectangle means subsample large boxes to at most maxLeaves pixels
// per rectangle to bound cost.
func NewHD(codec *stoch.Codec, win int) *HD {
	h := &HD{
		Win:   win,
		Bank:  Grid(win, win/4, win/8),
		codec: codec,
		rng:   hv.NewRNG(0x4aa2 ^ uint64(codec.D())),
	}
	h.levels = make([]*hv.Vector, 64)
	for i := range h.levels {
		h.levels[i] = codec.Construct(2*float64(i)/float64(len(h.levels)-1) - 1)
	}
	h.ids = make([]*hv.Vector, len(h.Bank))
	for i := range h.ids {
		h.ids[i] = hv.NewRand(h.rng, codec.D())
	}
	return h
}

// maxLeaves caps the pixels sampled per rectangle mean.
const maxLeaves = 16

// Reseed resets the extractor's private randomness (its RNG and its codec's
// RNG) to streams defined by seed, making subsequent stochastic output a
// pure function of (seed, input) — the same determinism contract
// hdhog.Extractor.Reseed provides. The ID atoms and the quantisation table,
// both built at construction, are unaffected.
func (h *HD) Reseed(seed uint64) {
	h.rng.Reseed(hv.Mix64(seed, 0x4aa2))
	h.codec.Reseed(hv.Mix64(seed, 0xc0de))
}

// pixel fetches a decorrelated hypervector for a [0, 1] pixel value.
func (h *HD) pixel(v float64) *hv.Vector {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	idx := int(v*float64(len(h.levels)-1) + 0.5)
	h.Pixels++
	return h.codec.DecorrelateShift(h.levels[idx], 1+h.rng.Intn(h.codec.D()-1))
}

// meanHV builds the stochastic mean of the pixels inside boxes, sampling a
// regular sub-lattice when the area exceeds maxLeaves.
func (h *HD) meanHV(img *imgproc.Image, boxes [][4]int) *hv.Vector {
	var leaves []*hv.Vector
	for _, b := range boxes {
		w, ht := b[2]-b[0], b[3]-b[1]
		if w <= 0 || ht <= 0 {
			continue
		}
		step := 1
		for (w/step)*(ht/step) > maxLeaves/len(boxes) && step < w && step < ht {
			step++
		}
		for y := b[1] + step/2; y < b[3]; y += step {
			for x := b[0] + step/2; x < b[2]; x += step {
				leaves = append(leaves, h.pixel(img.Norm(x, y)))
			}
		}
	}
	if len(leaves) == 0 {
		return h.codec.Construct(0)
	}
	// Balanced tree of 0.5-weighted averages (equal leaf weights).
	for len(leaves) > 1 {
		next := leaves[:0]
		for i := 0; i+1 < len(leaves); i += 2 {
			next = append(next, h.codec.Add(leaves[i], leaves[i+1]))
		}
		if len(leaves)%2 == 1 {
			next = append(next, leaves[len(leaves)-1])
		}
		leaves = next
	}
	return leaves[0]
}

// FeatureHV computes one bank feature as a hypervector representing
// (mean+ - mean-)/2 on the [-1, 1] pixel scale.
func (h *HD) FeatureHV(img *imgproc.Image, f Feature) *hv.Vector {
	pos, neg := f.rects()
	return h.codec.Sub(h.meanHV(img, pos), h.meanHV(img, neg))
}

// Feature returns the window's feature hypervector: each bank feature's
// decoded value weights its ID atom, mirroring the hyperspace HOG bundling.
func (h *HD) Feature(img *imgproc.Image) *hv.Vector {
	if img.W != h.Win || img.H != h.Win {
		img = img.Resize(h.Win, h.Win)
	}
	d := h.codec.D()
	acc := hv.NewAccumulator(d)
	for i, f := range h.Bank {
		v := h.codec.Decode(h.FeatureHV(img, f))
		w := int32(v * 64)
		if w == 0 {
			continue
		}
		acc.AddScaled(h.ids[i], w)
	}
	out, _ := acc.Sign(hv.NewRand(h.rng, d))
	return out
}

// DecodedFeatures decodes the whole bank to floats (for parity tests).
func (h *HD) DecodedFeatures(img *imgproc.Image) []float64 {
	if img.W != h.Win || img.H != h.Win {
		img = img.Resize(h.Win, h.Win)
	}
	out := make([]float64, len(h.Bank))
	for i, f := range h.Bank {
		out[i] = h.codec.Decode(h.FeatureHV(img, f))
	}
	return out
}

// Validate checks bank geometry invariants.
func (e *Extractor) Validate() error {
	for i, f := range e.Bank {
		if f.X < 0 || f.Y < 0 || f.X+f.W > e.Win || f.Y+f.H > e.Win {
			return fmt.Errorf("haar: feature %d out of window", i)
		}
		if !divisible(f.Kind, f.W, f.H) {
			return fmt.Errorf("haar: feature %d not divisible", i)
		}
	}
	return nil
}
