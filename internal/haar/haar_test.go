package haar

import (
	"math"
	"testing"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{TwoH: "two-h", TwoV: "two-v", ThreeH: "three-h",
		ThreeV: "three-v", Four: "four", Kind(99): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestGridValid(t *testing.T) {
	e := New(24)
	if len(e.Bank) == 0 {
		t.Fatal("empty bank")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRectsCoverFeatureArea(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		f := Feature{Kind: k, X: 0, Y: 0, W: 12, H: 12}
		pos, neg := f.rects()
		var area int
		for _, b := range append(append([][4]int{}, pos...), neg...) {
			if b[2] <= b[0] || b[3] <= b[1] {
				t.Fatalf("%v: degenerate rect %v", k, b)
			}
			area += (b[2] - b[0]) * (b[3] - b[1])
		}
		if area != 144 {
			t.Fatalf("%v: rects cover %d of 144", k, area)
		}
	}
}

func TestEvalFlatImageIsZero(t *testing.T) {
	img := imgproc.NewImage(24, 24)
	img.Fill(128)
	it := imgproc.NewIntegral(img)
	for k := Kind(0); k < numKinds; k++ {
		f := Feature{Kind: k, X: 0, Y: 0, W: 12, H: 12}
		if v := f.Eval(it); v != 0 {
			t.Fatalf("%v on flat image = %v", k, v)
		}
	}
}

func TestEvalTwoHEdge(t *testing.T) {
	// Left half white, right half black: TwoH = (255 - 0)/255 = 1.
	img := imgproc.NewImage(24, 24)
	img.FillRect(0, 0, 12, 24, 255)
	it := imgproc.NewIntegral(img)
	f := Feature{Kind: TwoH, X: 0, Y: 0, W: 24, H: 24}
	if v := f.Eval(it); math.Abs(v-1) > 1e-9 {
		t.Fatalf("TwoH on vertical edge = %v, want 1", v)
	}
	// Flipped contrast flips the sign.
	img2 := imgproc.NewImage(24, 24)
	img2.FillRect(12, 0, 24, 24, 255)
	it2 := imgproc.NewIntegral(img2)
	if v := f.Eval(it2); math.Abs(v+1) > 1e-9 {
		t.Fatalf("TwoH on inverted edge = %v, want -1", v)
	}
}

func TestEvalThreeHBar(t *testing.T) {
	// Dark bar in the middle third: ThreeH positive.
	img := imgproc.NewImage(24, 24)
	img.Fill(200)
	img.FillRect(8, 0, 16, 24, 0)
	it := imgproc.NewIntegral(img)
	f := Feature{Kind: ThreeH, X: 0, Y: 0, W: 24, H: 24}
	if v := f.Eval(it); v <= 0.5 {
		t.Fatalf("ThreeH on bar = %v, want strongly positive", v)
	}
}

func TestFeaturesVector(t *testing.T) {
	e := New(24)
	img := imgproc.NewImage(24, 24)
	img.GradientFill(0, 0, 23, 23, 0, 255)
	f := e.Features(img)
	if len(f) != len(e.Bank) {
		t.Fatalf("feature count %d != bank %d", len(f), len(e.Bank))
	}
	for i, v := range f {
		if v < -1 || v > 1 {
			t.Fatalf("feature %d out of range: %v", i, v)
		}
	}
	// Auto-resize path.
	big := imgproc.NewImage(48, 48)
	big.GradientFill(0, 0, 47, 47, 0, 255)
	if got := e.Features(big); len(got) != len(e.Bank) {
		t.Fatal("resize path broken")
	}
}

func TestHDFeatureParityWithClassical(t *testing.T) {
	// Decoded hyperspace HAAR features track the classical values. The
	// hyperspace value is (mean+ - mean-)/2 on the [-1, 1] pixel scale,
	// i.e. exactly the classical [0,1]-scale difference; large rectangles
	// are subsampled, so the tolerance is loose.
	codec := stoch.NewCodec(8192, 5)
	h := NewHD(codec, 24)
	e := New(24)
	img := imgproc.NewImage(24, 24)
	img.FillRect(0, 0, 12, 24, 255)

	classical := e.Features(img)
	decoded := h.DecodedFeatures(img)
	if len(decoded) != len(classical) {
		t.Fatal("bank mismatch")
	}
	// Check the strongest classical features keep sign and rough size.
	checked := 0
	for i, c := range classical {
		if math.Abs(c) < 0.5 {
			continue
		}
		checked++
		if math.Abs(decoded[i]-c) > 0.35 {
			t.Fatalf("feature %d (%v): decoded %v, classical %v",
				i, e.Bank[i], decoded[i], c)
		}
	}
	if checked == 0 {
		t.Fatal("no strong features to check")
	}
}

func TestHDFeatureHV(t *testing.T) {
	codec := stoch.NewCodec(4096, 6)
	h := NewHD(codec, 16)
	img := imgproc.NewImage(16, 16)
	img.FillRect(0, 0, 8, 16, 255)
	f := Feature{Kind: TwoH, X: 0, Y: 0, W: 16, H: 16}
	got := codec.Decode(h.FeatureHV(img, f))
	if math.Abs(got-1) > 0.15 {
		t.Fatalf("edge feature decodes to %v, want ~1", got)
	}
}

func TestHDFeatureDiscriminates(t *testing.T) {
	codec := stoch.NewCodec(4096, 7)
	h := NewHD(codec, 16)
	r := hv.NewRNG(8)
	edge := imgproc.NewImage(16, 16)
	edge.FillRect(0, 0, 8, 16, 255)
	noise := imgproc.NewImage(16, 16)
	for i := range noise.Pix {
		noise.Pix[i] = uint8(r.Intn(256))
	}
	fe1 := h.Feature(edge)
	fe2 := h.Feature(edge)
	fn := h.Feature(noise)
	if fe1.Cos(fe2) <= fe1.Cos(fn) {
		t.Fatalf("same-image similarity %v not above cross %v", fe1.Cos(fe2), fe1.Cos(fn))
	}
}

func TestHDPixelsCounted(t *testing.T) {
	codec := stoch.NewCodec(1024, 9)
	h := NewHD(codec, 16)
	img := imgproc.NewImage(16, 16)
	h.Feature(img)
	if h.Pixels == 0 {
		t.Fatal("no pixel fetches recorded")
	}
}

func BenchmarkClassicalFeatures(b *testing.B) {
	e := New(24)
	img := imgproc.NewImage(24, 24)
	img.GradientFill(0, 0, 23, 23, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Features(img)
	}
}

func BenchmarkHDFeature(b *testing.B) {
	codec := stoch.NewCodec(2048, 1)
	h := NewHD(codec, 24)
	img := imgproc.NewImage(24, 24)
	img.GradientFill(0, 0, 23, 23, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Feature(img)
	}
}
