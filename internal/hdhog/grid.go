package hdhog

import (
	"fmt"
	"math/bits"
	"sync"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
)

// CellGrid caches the hyperspace HOG cell histograms of one pyramid level.
// With the default half-window stride every 8x8 cell is shared by up to
// four windows, so extracting the grid once and assembling window features
// from it removes the ~4x redundant gradient/magnitude/binning work the
// per-window path pays — the rematerialisation-avoidance optimisation the
// HDC hardware literature calls out. Bundle weights (vote count times the
// decoded mean magnitude, the classical side information of Feature) are
// decoded once per (cell, bin) at build time and cached, already quantised
// to the integer scale Feature uses.
//
// A CellGrid is immutable after LevelGrid returns and may be shared by any
// number of goroutines.
type CellGrid struct {
	CW, CH int        // grid extent in cells
	Cells  []CellBins // row-major cell histograms (nil vecs in empty bins)
	bins   int
	// weights holds the pre-quantised bundle weight of every (cell, bin):
	// round(count * max(decode(vec), 0) * weightScale), exactly the integer
	// Feature would compute per window.
	weights []int32
}

// LevelGrid extracts the full cell grid of a level image with up to
// workers goroutines, one fork of the extractor per worker. Every cell row
// is a pure function of (seed, row index): the row's extractor reseeds
// before extracting, so the grid is bit-identical for any worker count and
// any goroutine schedule. Work counters of the forks are folded back into
// e before returning.
func (e *Extractor) LevelGrid(img *imgproc.Image, seed uint64, workers int) *CellGrid {
	cw, ch := img.W/e.P.CellSize, img.H/e.P.CellSize
	g := &CellGrid{
		CW:      cw,
		CH:      ch,
		bins:    e.P.Bins,
		Cells:   make([]CellBins, cw*ch),
		weights: make([]int32, cw*ch*e.P.Bins),
	}
	if ch == 0 || cw == 0 {
		return g
	}
	sp := obs.StartSpan("level_grid")
	defer sp.End()
	sp.AddItems(int64(cw * ch))
	if workers > ch {
		workers = ch
	}
	if workers < 1 {
		workers = 1
	}
	// Forks are created serially, before any goroutine starts, because
	// Fork draws from the parent's RNG.
	exts := make([]*Extractor, workers)
	exts[0] = e
	for w := 1; w < workers; w++ {
		exts[w] = e.Fork()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ext := exts[w]
			for cy := w; cy < ch; cy += workers {
				ext.Reseed(hv.Mix64(seed, uint64(cy)))
				for cx := 0; cx < cw; cx++ {
					gi := cy*cw + cx
					cb := ext.cellHist(img, cx*e.P.CellSize, cy*e.P.CellSize, true)
					g.Cells[gi] = cb
					for b, cnt := range cb.Counts {
						if cnt == 0 {
							continue
						}
						val := ext.codec.Decode(cb.Vecs[b])
						if val < 0 {
							val = 0
						}
						g.weights[gi*e.P.Bins+b] = int32(float64(cnt)*val*weightScale + 0.5)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		e.Pixels += exts[w].Pixels
		e.codec.Stats.Add(exts[w].codec.Stats)
	}
	if e.GridHook != nil {
		e.GridHook(g)
		g.reweight(e)
	}
	return g
}

// reweight recomputes every cached bundle weight from the current cell
// hypervectors — required after a GridHook mutates them, since the weights
// were decoded from the pre-corruption vectors during extraction. Decode is
// deterministic (a popcount against the codec's basis), so reweighting does
// not perturb any random stream.
func (g *CellGrid) reweight(e *Extractor) {
	for gi, cb := range g.Cells {
		for b, cnt := range cb.Counts {
			w := int32(0)
			if cnt != 0 && cb.Vecs[b] != nil {
				val := e.codec.Decode(cb.Vecs[b])
				if val < 0 {
					val = 0
				}
				w = int32(float64(cnt)*val*weightScale + 0.5)
			}
			g.weights[gi*g.bins+b] = w
		}
	}
}

// WindowFeature assembles the feature hypervector of the winCells-sized
// square window whose top-left cell is (cx0, cy0), from grid cells cached
// by LevelGrid. It bundles exactly what Feature bundles for the cropped
// window — each (window-local cell, bin) positional ID weighted by the
// cached histogram value — so the result matches a per-window Feature call
// up to stochastic extraction noise (the grid sees the level's real border
// pixels where a crop would clamp, and every hypervector carries fresh
// sampling noise; the classifier is built on exactly that tolerance).
//
// The bundling runs on a dedicated integer kernel: IDs contribute +w on
// set bits and -w on clear bits, which is accumulated as +2w over set bits
// (a sparse popcount-style iteration) with the total weight subtracted once
// at the end. This costs roughly half the generic accumulator path, which
// matters because window assembly is all that remains of per-window cost
// once extraction is amortised into the grid.
func (e *Extractor) WindowFeature(g *CellGrid, cx0, cy0, winCells int) *hv.Vector {
	if g.bins != e.P.Bins {
		panic(fmt.Sprintf("hdhog: grid has %d bins, extractor %d", g.bins, e.P.Bins))
	}
	if cx0 < 0 || cy0 < 0 || winCells <= 0 || cx0+winCells > g.CW || cy0+winCells > g.CH {
		panic(fmt.Sprintf("hdhog: window cells (%d,%d)+%d outside %dx%d grid",
			cx0, cy0, winCells, g.CW, g.CH))
	}
	// No per-window span here: window assembly still belongs to the
	// "encode" stage, but at 650+ windows per level the span bookkeeping
	// itself is measurable and pollutes the alloc profile, so callers
	// sweeping a grid carry one per-level encode span with an item count
	// (see hdface's level scorer) instead.
	d := e.codec.D()
	if e.P.BindBundle {
		return e.windowFeatureBind(g, cx0, cy0, winCells)
	}
	acc := e.scratch
	for i := range acc {
		acc[i] = 0
	}
	var bias int32
	for wy := 0; wy < winCells; wy++ {
		for wx := 0; wx < winCells; wx++ {
			ci := wy*winCells + wx           // window-local ID index
			gi := (cy0+wy)*g.CW + (cx0 + wx) // level-grid cell index
			ws := g.weights[gi*g.bins : (gi+1)*g.bins]
			for b, w := range ws {
				if w == 0 {
					continue
				}
				bias += w
				s2 := 2 * w
				for wi, word := range e.id(ci, b).Words() {
					base := wi * 64
					for x := word; x != 0; x &= x - 1 {
						acc[base+bits.TrailingZeros64(x)] += s2
					}
				}
			}
		}
	}
	tie := e.tieBuf.Rand(e.rng)
	out := hv.New(d)
	for i := 0; i < d; i++ {
		switch c := acc[i] - bias; {
		case c > 0:
			out.SetBit(i, 1)
		case c == 0:
			if tie.Bit(i) > 0 {
				out.SetBit(i, 1)
			}
		}
	}
	return out
}

// windowFeatureBind is the BindBundle ablation path of WindowFeature,
// mirroring Feature's XOR-bind construction over cached grid cells.
func (e *Extractor) windowFeatureBind(g *CellGrid, cx0, cy0, winCells int) *hv.Vector {
	d := e.codec.D()
	acc := hv.NewAccumulator(d)
	bound := hv.New(d)
	for wy := 0; wy < winCells; wy++ {
		for wx := 0; wx < winCells; wx++ {
			ci := wy*winCells + wx
			gi := (cy0+wy)*g.CW + (cx0 + wx)
			cb := g.Cells[gi]
			for b, cnt := range cb.Counts {
				if cnt == 0 {
					continue
				}
				bound.Xor(cb.Vecs[b], e.id(ci, b))
				acc.AddScaled(bound, int32(cnt))
			}
		}
	}
	tie := hv.NewRand(e.rng, d)
	out, _ := acc.Sign(tie)
	return out
}
