package hdhog

import (
	"testing"
	"testing/quick"

	"hdface/internal/hv"
)

// TestRematIDMatchesCachedID pins the rematerialization contract: the lazily
// cached positional ID and the pure (idBase, cell, bin) hash stream must be
// bit-identical, regardless of the order IDs were first touched in.
func TestRematIDMatchesCachedID(t *testing.T) {
	e := newTestExtractor(1000, 3)
	// Touch IDs out of order to prove order-independence.
	for _, cb := range [][2]int{{7, 3}, {0, 0}, {2, 8}, {7, 3}, {1, 5}} {
		cached := e.id(cb[0], cb[1])
		remat := hv.NewRemat(e.idSeed(cb[0], cb[1]), 1000)
		if !cached.Equal(remat) {
			t.Fatalf("ID (%d,%d): cached and rematerialized forms differ", cb[0], cb[1])
		}
	}
	// A second extractor of the same dimensionality agrees on every ID
	// without any shared state or warm order.
	e2 := newTestExtractor(1000, 99)
	if !e.id(7, 3).Equal(e2.id(7, 3)) {
		t.Fatal("extractors of equal D disagree on a positional ID")
	}
}

// TestFusedWindowScoreMatchesWindowFeature is the byte-identity property
// test of the tentpole: over random seeds and geometries, the fused
// single-pass kernel must produce exactly the legacy two-pass result — the
// same bundled feature words AND the same per-class Hamming distances.
func TestFusedWindowScoreMatchesWindowFeature(t *testing.T) {
	img := textured(40, 32, 21)
	check := func(seed uint64, dPick, winPick uint8) bool {
		d := []int{192, 256, 320, 500}[int(dPick)%4]
		winCells := []int{2, 3, 4}[int(winPick)%3]
		e := newTestExtractor(d, seed|1)
		g := e.LevelGrid(img, seed^0xabc, 2)

		crng := hv.NewRNG(seed ^ 0x5a5a)
		classes := []*hv.Vector{hv.NewRand(crng, d), hv.NewRand(crng, d)}
		classWords := [][]uint64{classes[0].Words(), classes[1].Words()}
		ar := NewScoreArena(d, winCells, e.P.Bins, len(classes))

		for _, pos := range [][2]int{{0, 0}, {1, 0}, {g.CW - winCells, g.CH - winCells}} {
			wseed := hv.Mix64(seed, uint64(pos[0]*31+pos[1]))
			e.Reseed(wseed)
			legacy := e.WindowFeature(g, pos[0], pos[1], winCells)
			wantDist := []int{legacy.Hamming(classes[0]), legacy.Hamming(classes[1])}

			e.Reseed(wseed)
			dist := e.FusedWindowScore(g, pos[0], pos[1], winCells, classWords, ar)

			for wi, w := range ar.Out() {
				if w != legacy.Words()[wi] {
					t.Logf("d=%d win=%d pos=%v: out word %d = %#x, want %#x",
						d, winCells, pos, wi, w, legacy.Words()[wi])
					return false
				}
			}
			if dist[0] != wantDist[0] || dist[1] != wantDist[1] {
				t.Logf("d=%d win=%d pos=%v: dist %v, want %v", d, winCells, pos, dist, wantDist)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedWindowScoreAllocs pins the zero-allocation contract of the fused
// hot path: once the arena exists, scoring a window — including the
// per-window Reseed the sweep performs — must not allocate at all.
func TestFusedWindowScoreAllocs(t *testing.T) {
	const d = 2048
	img := textured(48, 48, 33)
	e := newTestExtractor(d, 5)
	g := e.LevelGrid(img, 17, 1)
	crng := hv.NewRNG(8)
	classes := [][]uint64{hv.NewRand(crng, d).Words(), hv.NewRand(crng, d).Words()}
	ar := NewScoreArena(d, 6, e.P.Bins, len(classes))
	allocs := testing.AllocsPerRun(50, func() {
		e.Reseed(42)
		e.FusedWindowScore(g, 0, 0, 6, classes, ar)
	})
	if allocs != 0 {
		t.Fatalf("fused window score allocated %.1f times per run, want 0", allocs)
	}
}

func TestFusedWindowScorePanicsOnBindBundle(t *testing.T) {
	img := textured(48, 48, 34)
	e := newTestExtractor(256, 6)
	e.P.BindBundle = true
	g := e.LevelGrid(img, 1, 1)
	ar := NewScoreArena(256, 6, e.P.Bins, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("BindBundle fused score did not panic")
		}
	}()
	e.FusedWindowScore(g, 0, 0, 6, [][]uint64{hv.NewRand(hv.NewRNG(1), 256).Words()}, ar)
}
