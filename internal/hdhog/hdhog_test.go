package hdhog

import (
	"fmt"
	"math"
	"testing"

	"hdface/internal/hog"
	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

func newTestExtractor(d int, seed uint64) *Extractor {
	return New(stoch.NewCodec(d, seed), DefaultParams())
}

func TestDefaultsFilled(t *testing.T) {
	e := New(stoch.NewCodec(1024, 1), Params{})
	if e.P.CellSize != 8 || e.P.Bins != 9 || e.P.PixelLevels != 256 {
		t.Fatalf("defaults not applied: %+v", e.P)
	}
	if len(e.lows)+len(e.highs) != 8 {
		t.Fatalf("expected 8 boundaries, got %d + %d", len(e.lows), len(e.highs))
	}
	if e.midBin != 4 {
		t.Fatalf("midBin = %d, want 4", e.midBin)
	}
}

func TestBoundaryConstantsInRange(t *testing.T) {
	e := newTestExtractor(1024, 2)
	for _, bs := range [][]boundary{e.lows, e.highs} {
		for _, b := range bs {
			if b.mag <= 0 || b.mag > 1 {
				t.Fatalf("boundary magnitude %v outside (0,1]", b.mag)
			}
			want := math.Abs(math.Tan(b.theta))
			if b.reciprocal {
				want = 1 / want
			}
			if math.Abs(b.mag-want) > 1e-12 {
				t.Fatalf("boundary %v: mag %v, want %v", b.theta, b.mag, want)
			}
		}
	}
}

func TestPixelDecodesToValue(t *testing.T) {
	// Pixels in [0, 1] map onto the full [-1, 1] hypervector value range.
	e := newTestExtractor(8192, 3)
	for _, v := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := e.codec.Decode(e.pixel(v))
		if want := 2*v - 1; math.Abs(got-want) > 0.05 {
			t.Errorf("pixel(%v) decodes to %v, want %v", v, got, want)
		}
	}
	// Out-of-range values clamp.
	if got := e.codec.Decode(e.pixel(2)); math.Abs(got-1) > 0.05 {
		t.Errorf("pixel(2) = %v, want ~1", got)
	}
}

func TestExtremeColoursNearOrthogonal(t *testing.T) {
	// Paper Figure 1a: the black and white base hypervectors are nearly
	// orthogonal, mid-gray sits halfway to both.
	e := newTestExtractor(8192, 31)
	black, white := e.pixel(0), e.pixel(1)
	if cos := black.Cos(white); cos > -0.9 {
		t.Fatalf("black/white cos %v; signed extremes should be near opposite", cos)
	}
	mid := e.pixel(0.5)
	if c := mid.Cos(white); math.Abs(c) > 0.06 {
		t.Fatalf("mid-gray vs white cos %v, want ~0", c)
	}
}

func TestPixelFetchesAreDecorrelated(t *testing.T) {
	e := newTestExtractor(8192, 4)
	a := e.pixel(0.5)
	b := e.pixel(0.5)
	if a.Equal(b) {
		t.Fatal("two fetches returned identical bits")
	}
	// Same decoded value.
	if e.codec.Decode(a) != e.codec.Decode(b) {
		t.Fatal("decorrelated fetches decode differently")
	}
}

func TestGradientHVValues(t *testing.T) {
	e := newTestExtractor(8192, 5)
	img := imgproc.NewImage(8, 8)
	img.GradientFill(0, 0, 7, 0, 0, 255) // horizontal ramp
	gxv, gyv := e.GradientHV(img, 4, 4)
	wantGx, wantGy := hog.Gradient(img, 4, 4)
	// Hyperspace gradients are twice the [0,1]-normalised classical ones.
	if got := e.codec.Decode(gxv); math.Abs(got-2*wantGx) > 0.06 {
		t.Fatalf("gx decodes to %v, want %v", got, 2*wantGx)
	}
	if got := e.codec.Decode(gyv); math.Abs(got-2*wantGy) > 0.06 {
		t.Fatalf("gy decodes to %v, want %v", got, 2*wantGy)
	}
}

func TestMagnitudeHV(t *testing.T) {
	e := newTestExtractor(16384, 6)
	c := e.codec
	cases := [][2]float64{{0.5, 0}, {0.3, 0.4}, {0, 0.5}, {-0.4, 0.3}}
	for _, tc := range cases {
		gx, gy := c.Construct(tc[0]), c.Construct(tc[1])
		got := c.Decode(e.MagnitudeHV(gx, gy))
		want := math.Sqrt((tc[0]*tc[0] + tc[1]*tc[1]) / 2)
		if math.Abs(got-want) > 0.12 {
			t.Errorf("magnitude(%v, %v) = %v, want %v", tc[0], tc[1], got, want)
		}
	}
}

// binOfFloat computes the reference orientation bin from float gradients.
func binOfFloat(gx, gy float64, bins int) int {
	theta := math.Atan2(gy, gx)
	if theta < 0 {
		theta += math.Pi
	}
	if theta >= math.Pi {
		theta -= math.Pi
	}
	b := int(theta / (math.Pi / float64(bins)))
	if b >= bins {
		b = bins - 1
	}
	return b
}

func TestBinOfMatchesFloatReference(t *testing.T) {
	e := newTestExtractor(16384, 7)
	c := e.codec
	// Angles chosen away from bin boundaries so statistical noise cannot
	// flip the comparison.
	for _, deg := range []float64{10, 30, 50, 70, 85, 95, 115, 135, 155, 175} {
		theta := deg * math.Pi / 180
		gx := 0.4 * math.Cos(theta)
		gy := 0.4 * math.Sin(theta)
		want := binOfFloat(gx, gy, 9)
		got := e.BinOf(c.Construct(gx), c.Construct(gy))
		if got != want {
			t.Errorf("theta=%v deg: bin %d, want %d", deg, got, want)
		}
	}
}

func TestBinOfVerticalGradient(t *testing.T) {
	e := newTestExtractor(8192, 8)
	c := e.codec
	// gx ~ 0: must land in the bin containing pi/2.
	got := e.BinOf(c.Construct(0), c.Construct(0.5))
	if got != 4 {
		t.Fatalf("vertical gradient bin %d, want 4", got)
	}
}

func TestCellHistogramParityWithClassicalHOG(t *testing.T) {
	// On a strong-edge image the decoded hyperspace histogram must put its
	// mass in the same bin as the classical hard-binned HOG.
	e := New(stoch.NewCodec(8192, 9), Params{Stride: 1}) // per-pixel parity
	img := imgproc.NewImage(8, 8)
	img.FillRect(4, 0, 8, 8, 255) // vertical edge -> bin 0

	hd := e.DecodedHistograms(img)
	classical := hog.New(hog.HardParams()).CellHistograms(img)
	if len(hd) != 1 || len(classical) != 1 {
		t.Fatalf("expected single cell, got %d / %d", len(hd), len(classical))
	}
	argmax := func(xs []float64) int {
		best := 0
		for i, v := range xs {
			if v > xs[best] {
				best = i
			}
			_ = v
		}
		return best
	}
	if got, want := argmax(hd[0]), argmax(classical[0]); got != want {
		t.Fatalf("dominant bin %d, want %d (hd=%v)", got, want, hd[0])
	}
	// Scale relation: the hyperspace magnitude is sqrt(2)*|G_classical|
	// (2x gradients, /sqrt(2) from the paper's scaled magnitude), so the
	// decoded bin is sqrt(2)/sites times the classical sum.
	want := classical[0][0] * math.Sqrt2 / 64
	if got := hd[0][0]; math.Abs(got-want)/want > 0.45 {
		t.Fatalf("magnitude scale off: decoded = %v, want %v", got, want)
	}
}

func TestFeatureSelfSimilarity(t *testing.T) {
	// Two independent stochastic extractions of the same image must agree
	// far more than extractions of different images.
	e := newTestExtractor(4096, 10)
	r := hv.NewRNG(3)
	img1 := imgproc.NewImage(16, 16)
	for i := range img1.Pix {
		img1.Pix[i] = uint8(r.Intn(256))
	}
	img2 := imgproc.NewImage(16, 16)
	img2.GradientFill(0, 0, 15, 15, 0, 255)

	f1a := e.Feature(img1)
	f1b := e.Feature(img1)
	f2 := e.Feature(img2)
	same := f1a.Cos(f1b)
	diff := f1a.Cos(f2)
	if same <= diff {
		t.Fatalf("self-similarity %v not above cross-similarity %v", same, diff)
	}
	// Two independent representations of the same value v agree with
	// cosine v^2, so self-similarity is far from 1 — but it must clearly
	// beat the D-dimensional sampling noise floor.
	if same < 4/math.Sqrt(4096) {
		t.Fatalf("self-similarity %v below noise floor", same)
	}
}

func TestFeatureDimension(t *testing.T) {
	e := newTestExtractor(2048, 11)
	img := imgproc.NewImage(16, 16)
	f := e.Feature(img)
	if f.D() != 2048 {
		t.Fatalf("feature dimension %d", f.D())
	}
}

func TestForkInteroperability(t *testing.T) {
	e := newTestExtractor(4096, 12)
	e.WarmIDs(16, 16)
	f := e.Fork()
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	other := imgproc.NewImage(16, 16)
	other.FillRect(0, 8, 16, 16, 255)
	a := e.Feature(img)
	b := f.Feature(img)
	c := f.Feature(other)
	if a.Cos(b) <= a.Cos(c) {
		t.Fatalf("fork same-image similarity %v not above cross-image %v", a.Cos(b), a.Cos(c))
	}
}

func TestWarmIDsPrecreates(t *testing.T) {
	e := newTestExtractor(1024, 13)
	e.WarmIDs(16, 16)
	n := len(e.ids)
	if n != 4*9 {
		t.Fatalf("WarmIDs created %d ids, want 36", n)
	}
	img := imgproc.NewImage(16, 16)
	e.Feature(img)
	if len(e.ids) != n {
		t.Fatal("Feature created ids after warm-up")
	}
}

func TestPixelsCounter(t *testing.T) {
	e := newTestExtractor(1024, 14)
	img := imgproc.NewImage(8, 8)
	img.GradientFill(0, 0, 7, 7, 0, 255)
	e.Feature(img)
	// Default stride 3 on an 8x8 cell: sites at {1,4,7}^2 = 9.
	if e.Pixels != 9 {
		t.Fatalf("Pixels = %d, want 9", e.Pixels)
	}
	if e.SitesPerCell() != 9 {
		t.Fatalf("SitesPerCell = %d, want 9", e.SitesPerCell())
	}
}

func TestStrideOneCountsAllPixels(t *testing.T) {
	e := New(stoch.NewCodec(512, 21), Params{Stride: 1})
	img := imgproc.NewImage(8, 8)
	e.Feature(img)
	if e.Pixels != 64 {
		t.Fatalf("Pixels = %d, want 64", e.Pixels)
	}
}

func TestStatsFlowThroughCodec(t *testing.T) {
	e := newTestExtractor(1024, 15)
	before := e.codec.Stats
	img := imgproc.NewImage(8, 8)
	img.GradientFill(0, 0, 7, 0, 0, 255)
	e.Feature(img)
	if e.codec.Stats.Averages == before.Averages {
		t.Fatal("feature extraction did not count averages")
	}
	if e.codec.Stats.Sqrts == before.Sqrts {
		t.Fatal("feature extraction did not count square roots")
	}
}

func BenchmarkFeature16x16D1k(b *testing.B) {
	e := New(stoch.NewCodec(1024, 1), DefaultParams())
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Feature(img)
	}
}

func BenchmarkFeature16x16D4k(b *testing.B) {
	e := New(stoch.NewCodec(4096, 1), DefaultParams())
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Feature(img)
	}
}

func TestMagnitudeL1(t *testing.T) {
	e := New(stoch.NewCodec(16384, 41), Params{MagnitudeL1: true})
	c := e.codec
	cases := [][2]float64{{0.5, 0}, {0.3, 0.4}, {-0.4, 0.3}}
	for _, tc := range cases {
		gx, gy := c.Construct(tc[0]), c.Construct(tc[1])
		got := c.Decode(e.MagnitudeHV(gx, gy))
		want := (math.Abs(tc[0]) + math.Abs(tc[1])) / 2
		if math.Abs(got-want) > 0.08 {
			t.Errorf("L1 magnitude(%v, %v) = %v, want %v", tc[0], tc[1], got, want)
		}
	}
}

func TestMagnitudeL1CheaperThanL2(t *testing.T) {
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	l2 := New(stoch.NewCodec(1024, 42), Params{})
	l2.Feature(img)
	l1 := New(stoch.NewCodec(1024, 42), Params{MagnitudeL1: true})
	l1.Feature(img)
	if l1.codec.Stats.Sqrts >= l2.codec.Stats.Sqrts {
		t.Fatal("L1 magnitude still runs square roots")
	}
	if l1.codec.Stats.TotalWords() >= l2.codec.Stats.TotalWords() {
		t.Fatalf("L1 (%d words) not cheaper than L2 (%d words)",
			l1.codec.Stats.TotalWords(), l2.codec.Stats.TotalWords())
	}
}

func TestBindBundleOption(t *testing.T) {
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	e := New(stoch.NewCodec(2048, 43), Params{BindBundle: true})
	f := e.Feature(img)
	if f.D() != 2048 {
		t.Fatal("bind-bundle feature dimension wrong")
	}
}

// TestGoldenFeatureBits pins the exact feature bits for a fixed seed and
// image, guarding the whole stochastic pipeline (RNG streams, mask
// generation, search order) against silent behavioural drift. Update the
// constant only for an intentional algorithm change.
func TestGoldenFeatureBits(t *testing.T) {
	e := New(stoch.NewCodec(256, 12345), Params{})
	img := imgproc.NewImage(16, 16)
	img.GradientFill(0, 0, 15, 15, 0, 255)
	f := e.Feature(img)
	got := fmt.Sprintf("%016x%016x", f.Words()[0], f.Words()[1])
	// Re-pinned when positional IDs moved from RNG-stream draws to pure
	// (idBase, cell, bin) rematerialization hashes — an intentional
	// representation change (the IDs are different, equally random bits).
	const want = "72ae42b5089de41c41d4e0cd349dfa1e"
	if got != want {
		t.Fatalf("feature bits drifted:\n got %s\nwant %s", got, want)
	}
}
