package hdhog

import (
	"fmt"

	"hdface/internal/hv"
)

// ScoreArena holds the reusable per-worker buffers of the fused window-
// scoring path: the gathered (seed, weight) operand lists, the bundled
// output words and the per-class distances. One arena per goroutine makes
// FusedWindowScore allocation-free — the arena is sized for the worst-case
// operand count at construction, so not even slice growth occurs.
//
// An arena is exclusively owned scratch, like Extractor.scratch: share an
// Extractor fork and its arena with exactly one goroutine at a time.
type ScoreArena struct {
	seeds []uint64
	w2    []int32
	out   []uint64
	dist  []int
}

// NewScoreArena sizes an arena for scoring winCells x winCells windows with
// bins orientation bins against classes class hypervectors of dimension d.
func NewScoreArena(d, winCells, bins, classes int) *ScoreArena {
	pairs := winCells * winCells * bins
	return &ScoreArena{
		seeds: make([]uint64, 0, pairs),
		w2:    make([]int32, 0, pairs),
		out:   make([]uint64, (d+63)/64),
		dist:  make([]int, classes),
	}
}

// Out returns the packed words of the most recent window's bundled feature
// hypervector (tail masked). Valid until the next FusedWindowScore call on
// the same arena.
func (ar *ScoreArena) Out() []uint64 { return ar.out }

// FusedWindowScore scores the winCells-sized square window whose top-left
// cell is (cx0, cy0) against the packed class hypervectors in a single
// fused pass, returning the per-class Hamming distances (owned by the
// arena, valid until the next call).
//
// It computes exactly WindowFeature followed by Hamming distances to each
// class — byte-identical output for the same extractor seed state — but
// never materializes the feature's operands: positional IDs are
// rematerialized word-by-word from (idBase, cell, bin) seeds inside
// hv.FusedHamming, bundling/binarization run on a bit-sliced accumulator,
// and each output word is folded straight into the class popcounts. Per
// window it allocates nothing and its working set is the window's grid
// weights plus the cache-resident arena.
//
// Like WindowFeature, callers must Reseed the extractor per window for
// schedule-independent determinism; the tie-break stream drawn here matches
// WindowFeature's draw exactly. BindBundle extractors have no fused
// equivalent (their bundle operands are data hypervectors, not
// rematerializable IDs) and panic.
func (e *Extractor) FusedWindowScore(g *CellGrid, cx0, cy0, winCells int, classes [][]uint64, ar *ScoreArena) []int {
	if g.bins != e.P.Bins {
		panic(fmt.Sprintf("hdhog: grid has %d bins, extractor %d", g.bins, e.P.Bins))
	}
	if cx0 < 0 || cy0 < 0 || winCells <= 0 || cx0+winCells > g.CW || cy0+winCells > g.CH {
		panic(fmt.Sprintf("hdhog: window cells (%d,%d)+%d outside %dx%d grid",
			cx0, cy0, winCells, g.CW, g.CH))
	}
	if e.P.BindBundle {
		panic("hdhog: FusedWindowScore does not support BindBundle extractors")
	}
	if len(ar.dist) != len(classes) {
		panic(fmt.Sprintf("hdhog: arena sized for %d classes, got %d", len(ar.dist), len(classes)))
	}
	seeds, w2 := ar.seeds[:0], ar.w2[:0]
	var bias int32
	for wy := 0; wy < winCells; wy++ {
		for wx := 0; wx < winCells; wx++ {
			ci := wy*winCells + wx           // window-local ID index
			gi := (cy0+wy)*g.CW + (cx0 + wx) // level-grid cell index
			ws := g.weights[gi*g.bins : (gi+1)*g.bins]
			for b, w := range ws {
				if w == 0 {
					continue
				}
				bias += w
				seeds = append(seeds, e.idSeed(ci, b))
				w2 = append(w2, 2*w)
			}
		}
	}
	ar.seeds, ar.w2 = seeds, w2
	hv.FusedHamming(e.codec.D(), seeds, w2, bias, e.rng, classes, ar.out, ar.dist)
	return ar.dist
}
