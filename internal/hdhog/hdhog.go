// Package hdhog implements HDFace's hyperspace HOG (paper Section 4.3):
// the full Histogram-of-Oriented-Gradients pipeline — gradients, gradient
// magnitude, orientation binning and histogram accumulation — executed over
// binary hypervectors with the stochastic arithmetic of package stoch. The
// output of the extractor is itself a hypervector, so it feeds the HDC
// classifier with no separate encoding step.
//
// Per 3x3 pixel neighbourhood the paper's recipe is followed exactly:
//
//  1. Gradient: V_gx, V_gy as scaled stochastic differences of the
//     neighbouring pixel hypervectors (values in [-0.5, 0.5]).
//  2. Magnitude: V_m = sqrt((gx^2 + gy^2)/2) via stochastic square and
//     square root. This is |G|/sqrt(2); the uniform scale does not affect
//     the histogram, as the paper notes.
//  3. Orientation bin: the quadrant comes from the decoded signs of gx and
//     gy; within a quadrant the bin is found by comparing tan(theta) =
//     |gy|/|gx| against precomputed boundary constants tan(theta_i) using
//     the paper's alpha construction — with the reciprocal form when
//     |tan(theta_i)| > 1 so every operand stays inside [-1, 1].
//
// Per-cell, per-bin magnitudes are reduced with a balanced tree of
// stochastic averages; each (cell, bin)'s positional ID atom then joins
// the image-level bundle weighted by the histogram value (vote count times
// the decoded mean magnitude — read out with the same similarity primitive
// the paper's comparison operator is built on), yielding a single feature
// hypervector per image whose pairwise similarities approximate histogram
// dot products. See Feature for the rationale and the BindBundle ablation.
package hdhog

import (
	"math"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/obs"
	"hdface/internal/stoch"
)

// Params configures the hyperspace HOG extractor.
type Params struct {
	CellSize    int // pixels per histogram cell side (default 8)
	Bins        int // orientation bins over [0, pi) (default 9)
	PixelLevels int // size of the cached pixel hypervector table (default 256)
	// Stride is the spacing of gradient sites. The paper evaluates one
	// gradient per 3x3 pixel neighbourhood (its "cell of pixels"), i.e.
	// stride 3 (the default). Stride 1 gives per-pixel gradients matching
	// the classical HOG exactly, at 9x the cost.
	Stride int
	// BindBundle selects the pure bind-and-bundle feature construction
	// instead of the value-weighted ID bundle; see Feature. Ablation only.
	BindBundle bool
	// MagnitudeL1 replaces the paper's sqrt((gx^2+gy^2)/2) magnitude with
	// the L1 form (|gx|+|gy|)/2, which needs no stochastic square or
	// square root — the single most expensive part of the pipeline — at
	// the cost of an angle-dependent (up to sqrt(2)) magnitude skew.
	// Ablation only; the default follows the paper.
	MagnitudeL1 bool
}

// DefaultParams mirrors the paper's geometry: 8x8 histogram cells over
// gradients sampled at the centre of each 3x3 neighbourhood.
func DefaultParams() Params { return Params{CellSize: 8, Bins: 9, PixelLevels: 256, Stride: 3} }

// boundary is one precomputed orientation-bin boundary.
type boundary struct {
	theta      float64
	reciprocal bool       // compare with the 1/|r| form (|tan| > 1)
	mag        float64    // |tan(theta)| or 1/|tan(theta)|, in (0, 1]
	vec        *hv.Vector // hypervector of mag
}

// Extractor computes hyperspace HOG features. Not safe for concurrent use;
// clone per goroutine with Fork.
type Extractor struct {
	P     Params
	codec *stoch.Codec
	rng   *hv.RNG

	levels []*hv.Vector // pixel value quantisation table
	lows   []boundary   // boundaries in [0, pi/2): theta_1..theta_k
	highs  []boundary   // boundaries in (pi/2, pi): theta_k+1..theta_B-1
	midBin int          // bin containing pi/2

	// idBase seeds positional-ID rematerialization: the ID of (cell c,
	// bin b) is the pure function hv.NewRemat(idSeed(c, b), D), so any
	// kernel can regenerate ID words on the fly (hv.RematWord) without
	// touching the cache. A function of the codec dimensionality only, so
	// extractors of the same geometry produce interoperable features.
	idBase uint64

	// ids caches materialized positional IDs for the feature paths that
	// still read whole vectors; filled lazily (or via WarmIDs), always
	// bit-identical to rematerializing from idSeed.
	ids map[[3]int]*hv.Vector

	// scratch is the reusable per-dimension counter buffer of
	// WindowFeature's bundling loop; tieBuf the reusable tie-break vector.
	// Both are sized once at construction (the codec's D never changes for
	// a live extractor) and owned exclusively: Fork allocates fresh ones.
	scratch []int32
	tieBuf  *hv.Vector

	// GridHook, when set, is invoked on every freshly extracted CellGrid —
	// the fault-injection seam of the chaos harness, which corrupts cell
	// hypervectors in place. LevelGrid calls it after extraction and then
	// recomputes the cached bundle weights from the (possibly corrupted)
	// cell vectors, so the corruption propagates into every window
	// assembled from the grid. Forks inherit the hook.
	GridHook func(*CellGrid)

	// Pixels counts processed gradient sites, for the hardware model.
	Pixels int64
}

// New returns an extractor over the given codec. The codec's basis defines
// value semantics; extractors sharing a codec (or forks of one) produce
// interoperable features.
func New(codec *stoch.Codec, p Params) *Extractor {
	d := DefaultParams()
	if p.CellSize <= 0 {
		p.CellSize = d.CellSize
	}
	if p.Bins <= 0 {
		p.Bins = d.Bins
	}
	if p.PixelLevels <= 0 {
		p.PixelLevels = d.PixelLevels
	}
	if p.Stride <= 0 {
		p.Stride = d.Stride
	}
	e := &Extractor{
		P:       p,
		codec:   codec,
		rng:     hv.NewRNG(0xfeed ^ uint64(codec.D())),
		idBase:  hv.Mix64(0xfeed^uint64(codec.D()), 0x1d),
		ids:     make(map[[3]int]*hv.Vector),
		scratch: make([]int32, codec.D()),
		tieBuf:  hv.New(codec.D()),
	}
	// Pixels map onto the full [-1, 1] value range (black -> -1, white ->
	// +1) rather than [0, 1]: the doubled amplitude halves the relative
	// stochastic noise of every downstream gradient, magnitude and
	// comparison. The two extreme colours are near-orthogonal signed
	// hypervectors, exactly the paper's Figure 1a construction.
	e.levels = make([]*hv.Vector, p.PixelLevels)
	for i := range e.levels {
		e.levels[i] = codec.Construct(2*float64(i)/float64(p.PixelLevels-1) - 1)
	}
	binW := math.Pi / float64(p.Bins)
	e.midBin = int(math.Pi / 2 / binW) // bin containing pi/2
	for i := 1; i < p.Bins; i++ {
		theta := float64(i) * binW
		t := math.Tan(theta)
		b := boundary{theta: theta}
		if math.Abs(t) <= 1 {
			b.mag = math.Abs(t)
		} else {
			b.reciprocal = true
			b.mag = 1 / math.Abs(t)
		}
		b.vec = codec.Construct(b.mag)
		if theta < math.Pi/2 {
			e.lows = append(e.lows, b)
		} else {
			e.highs = append(e.highs, b)
		}
	}
	return e
}

// Codec returns the underlying stochastic codec (for stats inspection).
func (e *Extractor) Codec() *stoch.Codec { return e.codec }

// Fork derives an extractor with its own codec fork and RNG, sharing the
// basis, level table, boundary constants and positional IDs. Forks are safe
// to run on separate goroutines as long as no new image geometry is
// introduced concurrently (pre-warm IDs with WarmIDs).
func (e *Extractor) Fork() *Extractor {
	f := *e
	f.codec = e.codec.Fork()
	f.rng = hv.NewRNG(e.rng.Uint64())
	f.scratch = make([]int32, e.codec.D())
	f.tieBuf = hv.New(e.codec.D())
	f.Pixels = 0
	return &f
}

// Reseed resets the extractor's private randomness (its RNG and its codec's
// RNG) to streams defined by seed. Afterwards the extractor's stochastic
// output is a pure function of (seed, input), independent of what it
// processed before — which is how the parallel detection sweep keeps
// per-window extraction deterministic under any goroutine schedule: each
// unit of work reseeds from its own position index before running.
func (e *Extractor) Reseed(seed uint64) {
	e.rng.Reseed(hv.Mix64(seed, 0x6e0e))
	e.codec.Reseed(hv.Mix64(seed, 0xc0de))
}

// WarmIDs pre-generates the positional ID hypervectors for a w x h image so
// concurrent forks only read the shared map.
func (e *Extractor) WarmIDs(w, h int) {
	cw, ch := w/e.P.CellSize, h/e.P.CellSize
	for c := 0; c < cw*ch; c++ {
		for b := 0; b < e.P.Bins; b++ {
			e.id(c, b)
		}
	}
}

// idSeed derives the rematerialization seed of the (cell, bin) positional
// ID. Word wi of the ID is hv.RematWord(idSeed(c, b), wi); the fused
// scoring kernel regenerates words from this seed instead of reading the
// cached vector, and both views are bit-identical by construction.
func (e *Extractor) idSeed(c, b int) uint64 {
	return hv.Mix64(e.idBase, uint64(c)*uint64(e.P.Bins)+uint64(b))
}

// id returns the positional ID for cell c, bin b, materializing it into the
// cache on first use. IDs are pure functions of (idBase, cell, bin) — no
// RNG stream is consumed and creation order is irrelevant, so extractors of
// the same dimensionality always agree on every ID.
func (e *Extractor) id(c, b int) *hv.Vector {
	key := [3]int{c, b, 0}
	if v, ok := e.ids[key]; ok {
		return v
	}
	v := hv.NewRemat(e.idSeed(c, b), e.codec.D())
	e.ids[key] = v
	return v
}

// pixel returns a decorrelated hypervector for the normalised pixel value
// v in [0, 1], via the quantisation table (paper Figure 1a: correlative
// base hypervectors between the two extreme colours).
func (e *Extractor) pixel(v float64) *hv.Vector {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	idx := int(v*float64(len(e.levels)-1) + 0.5)
	// A fresh random rotation per fetch keeps reuses pairwise independent.
	return e.codec.DecorrelateShift(e.levels[idx], 1+e.rng.Intn(e.codec.D()-1))
}

// GradientHV returns the hypervectors of the scaled gradient components at
// (x, y). With pixels on the [-1, 1] scale, the represented values are
// (I'(x+1,y)-I'(x-1,y))/2 and (I'(x,y+1)-I'(x,y-1))/2 where I' = 2*I - 1,
// i.e. exactly twice the classical [0,1]-normalised centred difference.
func (e *Extractor) GradientHV(img *imgproc.Image, x, y int) (gx, gy *hv.Vector) {
	left := e.pixel(img.Norm(x-1, y))
	right := e.pixel(img.Norm(x+1, y))
	up := e.pixel(img.Norm(x, y-1))
	down := e.pixel(img.Norm(x, y+1))
	gx = e.codec.Sub(right, left)
	gy = e.codec.Sub(down, up)
	return
}

// MagnitudeHV returns the gradient magnitude hypervector: the paper's
// sqrt((gx^2+gy^2)/2), or (|gx|+|gy|)/2 when MagnitudeL1 is set.
func (e *Extractor) MagnitudeHV(gx, gy *hv.Vector) *hv.Vector {
	if e.P.MagnitudeL1 {
		return e.codec.Add(e.codec.Abs(gx), e.codec.Abs(gy))
	}
	sum := e.codec.Add(e.codec.Square(gx), e.codec.Square(gy))
	return e.codec.Sqrt(sum)
}

// tanGreater reports whether tan = |gy|/|gx| exceeds the boundary, using
// the paper's alpha construction. absGx/absGy are magnitude hypervectors.
func (e *Extractor) tanGreater(absGx, absGy *hv.Vector, b boundary) bool {
	c := e.codec
	var alpha *hv.Vector
	if !b.reciprocal {
		// alpha = (|gy| - r|gx|)/2
		rgx := c.Mul(c.Decorrelate(b.vec), absGx)
		alpha = c.Sub(absGy, rgx)
	} else {
		// r > 1: alpha = ((1/r)|gy| - |gx|)/2
		rgy := c.Mul(c.Decorrelate(b.vec), absGy)
		alpha = c.Sub(rgy, absGx)
	}
	return c.Decode(alpha) > 0
}

// BinOf returns the orientation bin of the gradient represented by
// (gx, gy). The quadrant comes from decoded signs; the in-quadrant search
// compares against precomputed tan boundaries, never leaving [-1, 1].
func (e *Extractor) BinOf(gx, gy *hv.Vector) int {
	c := e.codec
	sx, sy := c.Sign(gx), c.Sign(gy)
	if sx == 0 {
		// Vertical gradient direction: orientation pi/2.
		return e.midBin
	}
	var absGx, absGy *hv.Vector
	if sx < 0 {
		absGx = c.Neg(gx)
	} else {
		absGx = gx.Clone()
	}
	if sy < 0 {
		absGy = c.Neg(gy)
	} else {
		absGy = gy.Clone()
	}
	if sx*sy >= 0 {
		// theta in [0, pi/2): ascend through the low boundaries; the first
		// boundary NOT exceeded closes the bin.
		for i, b := range e.lows {
			if !e.tanGreater(absGx, absGy, b) {
				return i
			}
		}
		return len(e.lows) // bin containing pi/2
	}
	// theta in (pi/2, pi): tan(theta) = -|gy|/|gx|; theta < theta_i iff
	// |gy|/|gx| > |tan(theta_i)|.
	for i, b := range e.highs {
		if e.tanGreater(absGx, absGy, b) {
			return len(e.lows) + i // bin ending at this boundary
		}
	}
	return e.P.Bins - 1
}

// treeMean reduces a non-empty slice of value hypervectors to their
// stochastic mean with a balanced tree of weighted averages. Unlike an
// incremental (left-leaning) mean, whose selection noise grows linearly
// with the number of elements, the balanced reduction keeps the compounded
// variance O(1/D) regardless of fan-in.
func (e *Extractor) treeMean(vs []*hv.Vector) *hv.Vector {
	type node struct {
		v *hv.Vector
		n int
	}
	nodes := make([]node, len(vs))
	for i, v := range vs {
		nodes[i] = node{v, 1}
	}
	for len(nodes) > 1 {
		next := nodes[:0]
		for i := 0; i+1 < len(nodes); i += 2 {
			a, b := nodes[i], nodes[i+1]
			p := float64(a.n) / float64(a.n+b.n)
			next = append(next, node{e.codec.WeightedAvg(p, a.v, b.v), a.n + b.n})
		}
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0].v
}

// CellBins holds the per-cell histogram in hyperspace: for every
// orientation bin, the square root of the mean voting magnitude (a
// hypervector) and the integer vote count. Counts are classical side
// information, exactly like the histogram's bin index itself; they weight
// the bundle so the feature encodes both edge strength and edge frequency.
type CellBins struct {
	Vecs   []*hv.Vector
	Counts []int
}

// CellHistogramHVs computes the histogram hypervectors of every cell.
func (e *Extractor) CellHistogramHVs(img *imgproc.Image) []CellBins {
	cw, ch := img.W/e.P.CellSize, img.H/e.P.CellSize
	out := make([]CellBins, cw*ch)
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			out[cy*cw+cx] = e.cellHist(img, cx*e.P.CellSize, cy*e.P.CellSize, false)
		}
	}
	return out
}

// cellHist computes the histogram of the cell whose top-left pixel is
// (x0, y0), sampling gradients on the stride lattice. When skipEmpty is
// set, zero-count bins keep a nil vector instead of a Construct(0)
// hypervector — the cell-grid path never reads them, and skipping the
// constructions shaves a measurable slice off level precomputation.
func (e *Extractor) cellHist(img *imgproc.Image, x0, y0 int, skipEmpty bool) CellBins {
	c := e.codec
	st := e.P.Stride
	votes := make([][]*hv.Vector, e.P.Bins)
	for py := st / 2; py < e.P.CellSize; py += st {
		for px := st / 2; px < e.P.CellSize; px += st {
			gx, gy := e.GradientHV(img, x0+px, y0+py)
			e.Pixels++
			if c.Sign(gx) == 0 && c.Sign(gy) == 0 {
				continue // statistically flat: no vote
			}
			bin := e.BinOf(gx, gy)
			votes[bin] = append(votes[bin], e.MagnitudeHV(gx, gy))
		}
	}
	cb := CellBins{
		Vecs:   make([]*hv.Vector, e.P.Bins),
		Counts: make([]int, e.P.Bins),
	}
	for b := 0; b < e.P.Bins; b++ {
		if len(votes[b]) == 0 {
			if !skipEmpty {
				cb.Vecs[b] = c.Construct(0)
			}
			continue
		}
		cb.Vecs[b] = e.treeMean(votes[b])
		cb.Counts[b] = len(votes[b])
	}
	return cb
}

// weightScale converts a histogram value (vote count times mean magnitude,
// at most count * 0.5) into an integer bundle weight with enough dynamic
// range that quantisation is negligible next to the stochastic noise.
const weightScale = 64

// Feature returns the single feature hypervector of the image. Every
// (cell, bin) gets a positional ID atom whose bundle weight is the
// histogram value computed in hyperspace: the vote count times the decoded
// mean magnitude. Reading the magnitude out is a similarity measurement —
// the same native HDC primitive the comparison operator of Section 4 is
// built on — so the whole histogram is produced by stochastic arithmetic
// and the feature similarity between two images approximates the histogram
// dot product at full scale.
//
// When BindBundle is set the extractor instead XOR-binds each histogram
// hypervector to its ID and bundles those (the ablation discussed in
// DESIGN.md); the resulting similarities carry a value-squared attenuation
// that buries fine class margins under the 1/sqrt(D) sampling noise.
func (e *Extractor) Feature(img *imgproc.Image) *hv.Vector {
	cells := e.CellHistogramHVs(img)
	// The bundling below is the stoch-mode counterpart of the projection
	// encoder: it maps the extracted histogram into the final feature
	// hypervector, so it carries the "encode" stage span.
	sp := obs.StartSpan("encode")
	defer sp.End()
	sp.AddItems(1)
	d := e.codec.D()
	acc := hv.NewAccumulator(d)
	bound := hv.New(d)
	for ci, cb := range cells {
		for b, v := range cb.Vecs {
			if cb.Counts[b] == 0 {
				continue
			}
			if e.P.BindBundle {
				bound.Xor(v, e.id(ci, b))
				acc.AddScaled(bound, int32(cb.Counts[b]))
				continue
			}
			val := e.codec.Decode(v)
			if val < 0 {
				val = 0
			}
			// Cosine similarity is scale-invariant, so no per-cell
			// normalisation is needed; the fixed scale only keeps integer
			// quantisation well below the stochastic noise floor.
			w := int32(float64(cb.Counts[b])*val*weightScale + 0.5)
			if w == 0 {
				continue
			}
			acc.AddScaled(e.id(ci, b), w)
		}
	}
	tie := hv.NewRand(e.rng, d)
	out, _ := acc.Sign(tie)
	return out
}

// SitesPerCell returns the number of gradient sites in one histogram cell
// for the configured stride.
func (e *Extractor) SitesPerCell() int {
	n := 0
	for p := e.P.Stride / 2; p < e.P.CellSize; p += e.P.Stride {
		n++
	}
	return n * n
}

// DecodedHistograms decodes every cell histogram back to float bin values
// comparable (up to the sqrt(2)*sites scale) with the classical hard HOG
// evaluated at the same sites: h(c,b) = count/sites * decode(vec).
func (e *Extractor) DecodedHistograms(img *imgproc.Image) [][]float64 {
	cells := e.CellHistogramHVs(img)
	cellPixels := float64(e.SitesPerCell())
	out := make([][]float64, len(cells))
	for i, cb := range cells {
		row := make([]float64, len(cb.Vecs))
		for b, v := range cb.Vecs {
			row[b] = float64(cb.Counts[b]) / cellPixels * e.codec.Decode(v)
		}
		out[i] = row
	}
	return out
}
