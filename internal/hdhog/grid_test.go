package hdhog

import (
	"math"
	"testing"

	"hdface/internal/hv"
	"hdface/internal/imgproc"
	"hdface/internal/stoch"
)

// textured returns a deterministic w x h test image with non-trivial
// gradients everywhere.
func textured(w, h int, seed uint64) *imgproc.Image {
	img := imgproc.NewImage(w, h)
	r := hv.NewRNG(seed)
	for i := range img.Pix {
		img.Pix[i] = uint8(r.Intn(256))
	}
	return img
}

func TestLevelGridDeterministicAcrossWorkers(t *testing.T) {
	img := textured(64, 48, 5)
	var grids []*CellGrid
	for _, workers := range []int{1, 3, 8} {
		e := newTestExtractor(1024, 42)
		grids = append(grids, e.LevelGrid(img, 99, workers))
	}
	ref := grids[0]
	if ref.CW != 8 || ref.CH != 6 {
		t.Fatalf("grid extent %dx%d, want 8x6", ref.CW, ref.CH)
	}
	for gi, g := range grids[1:] {
		if g.CW != ref.CW || g.CH != ref.CH {
			t.Fatalf("grid %d extent mismatch", gi+1)
		}
		for i := range ref.weights {
			if g.weights[i] != ref.weights[i] {
				t.Fatalf("grid %d weight %d differs: %d vs %d", gi+1, i, g.weights[i], ref.weights[i])
			}
		}
		for c := range ref.Cells {
			for b := 0; b < ref.bins; b++ {
				rv, gv := ref.Cells[c].Vecs[b], g.Cells[c].Vecs[b]
				if (rv == nil) != (gv == nil) {
					t.Fatalf("grid %d cell %d bin %d emptiness differs", gi+1, c, b)
				}
				if rv != nil && !rv.Equal(gv) {
					t.Fatalf("grid %d cell %d bin %d hypervector differs", gi+1, c, b)
				}
				if ref.Cells[c].Counts[b] != g.Cells[c].Counts[b] {
					t.Fatalf("grid %d cell %d bin %d count differs", gi+1, c, b)
				}
			}
		}
	}
}

func TestLevelGridFoldsWorkCounters(t *testing.T) {
	img := textured(32, 32, 6)
	serial := newTestExtractor(512, 7)
	serial.LevelGrid(img, 1, 1)
	parallel := newTestExtractor(512, 7)
	parallel.LevelGrid(img, 1, 4)
	if serial.Pixels == 0 {
		t.Fatal("grid extraction counted no gradient sites")
	}
	if serial.Pixels != parallel.Pixels {
		t.Fatalf("worker forks lost site counts: %d vs %d", parallel.Pixels, serial.Pixels)
	}
}

// TestWindowFeatureMatchesFeature checks the statistical-equivalence claim
// the cell-grid engine rests on: a window assembled from cached cell
// hypervectors is as similar to a direct Feature extraction as two
// independent Feature extractions are to each other — the grid adds no
// systematic error, only the sampling noise HDC tolerates by construction.
func TestWindowFeatureMatchesFeature(t *testing.T) {
	img := textured(48, 48, 9)
	e := newTestExtractor(4096, 21)
	f1 := e.Feature(img)
	f2 := e.Feature(img)
	base := f1.Cos(f2) // independent re-extraction similarity

	g := e.LevelGrid(img, 77, 2)
	fg := e.WindowFeature(g, 0, 0, 6)
	if fg.D() != 4096 {
		t.Fatalf("grid feature dimension %d", fg.D())
	}
	sim := fg.Cos(f1)
	if sim < base/2 {
		t.Fatalf("grid feature similarity %v far below re-extraction baseline %v", sim, base)
	}
	if sim < 4/math.Sqrt(4096) {
		t.Fatalf("grid feature similarity %v below noise floor", sim)
	}
	// And it must discriminate: a different window's grid feature is less
	// similar than the same window's direct extraction.
	other := textured(48, 48, 10)
	fo := e.Feature(other)
	if cross := fg.Cos(fo); cross >= sim {
		t.Fatalf("grid feature does not discriminate: same %v vs cross %v", sim, cross)
	}
}

func TestWindowFeatureDeterministicAfterReseed(t *testing.T) {
	img := textured(64, 64, 11)
	e := newTestExtractor(1024, 13)
	// Reseed determinism holds once the positional IDs exist (the sweep
	// warms them before forking); lazy creation would consume the stream.
	e.WarmIDs(48, 48)
	g := e.LevelGrid(img, 5, 2)
	e.Reseed(123)
	a := e.WindowFeature(g, 1, 1, 6)
	e.Reseed(123)
	b := e.WindowFeature(g, 1, 1, 6)
	if !a.Equal(b) {
		t.Fatal("reseeded WindowFeature is not reproducible")
	}
	// Tie-break perturbation needs dimensions that actually tie; a flat
	// image yields zero weights everywhere, so every dimension ties and the
	// window feature IS the tie vector — guaranteed to move with the seed.
	flat := imgproc.NewImage(64, 64)
	fg := e.LevelGrid(flat, 5, 1)
	e.Reseed(123)
	c := e.WindowFeature(fg, 1, 1, 6)
	e.Reseed(124)
	d := e.WindowFeature(fg, 1, 1, 6)
	if c.Equal(d) {
		t.Fatal("different seeds should perturb the tie-break stream")
	}
}

func TestWindowFeatureBindBundlePath(t *testing.T) {
	img := textured(48, 48, 14)
	codec := stoch.NewCodec(512, 15)
	p := DefaultParams()
	p.BindBundle = true
	e := New(codec, p)
	g := e.LevelGrid(img, 3, 1)
	f := e.WindowFeature(g, 0, 0, 6)
	if f.D() != 512 {
		t.Fatalf("bind-bundle grid feature dimension %d", f.D())
	}
}

func TestWindowFeaturePanicsOutsideGrid(t *testing.T) {
	img := textured(48, 48, 16)
	e := newTestExtractor(512, 17)
	g := e.LevelGrid(img, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-grid window did not panic")
		}
	}()
	e.WindowFeature(g, 2, 2, 6) // 2+6 > 6 cells
}
