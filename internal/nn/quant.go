package nn

import (
	"fmt"
	"math"
)

// Quantized is a fixed-point snapshot of an MLP: every weight is stored as
// a signed integer code of the configured bit width with a per-tensor
// scale. Inference runs on the dequantised values; the integer codes are
// the bit-level substrate Table 2's fault injection flips and the hardware
// model prices.
type Quantized struct {
	Bits   int
	Cfg    Config
	codes  [][]int32 // per tensor
	scales []float64 // per tensor: weight = code * scale
	mlp    *MLP      // geometry donor for inference
}

// Quantize snapshots the model at the given weight precision (16, 8 or 4
// bits).
func Quantize(m *MLP, bits int) (*Quantized, error) {
	switch bits {
	case 16, 8, 4:
	default:
		return nil, fmt.Errorf("nn: unsupported precision %d bits", bits)
	}
	q := &Quantized{Bits: bits, Cfg: m.Cfg}
	maxCode := float64(int32(1)<<(bits-1) - 1)
	for _, tensor := range m.Layers() {
		var amax float64
		for _, w := range tensor {
			if a := math.Abs(w); a > amax {
				amax = a
			}
		}
		scale := amax / maxCode
		if scale == 0 {
			scale = 1
		}
		codes := make([]int32, len(tensor))
		for i, w := range tensor {
			c := math.Round(w / scale)
			if c > maxCode {
				c = maxCode
			} else if c < -maxCode {
				c = -maxCode
			}
			codes[i] = int32(c)
		}
		q.codes = append(q.codes, codes)
		q.scales = append(q.scales, scale)
	}
	// Build a geometry clone whose weights will be refreshed on Sync.
	clone, err := New(m.Cfg)
	if err != nil {
		return nil, err
	}
	q.mlp = clone
	q.Sync()
	return q, nil
}

// Sync dequantises the integer codes back into the inference network. Call
// after mutating Codes (e.g. fault injection).
func (q *Quantized) Sync() {
	tensors := q.mlp.Layers()
	for t, codes := range q.codes {
		dst := tensors[t]
		s := q.scales[t]
		for i, c := range codes {
			dst[i] = float64(c) * s
		}
	}
}

// Codes exposes the integer weight codes for fault injection. After
// mutation, call Sync before Predict.
func (q *Quantized) Codes() [][]int32 { return q.codes }

// Predict classifies with the quantised weights.
func (q *Quantized) Predict(x []float64) int { return q.mlp.Predict(x) }

// Accuracy evaluates the quantised model.
func (q *Quantized) Accuracy(xs [][]float64, ys []int) float64 {
	return q.mlp.Accuracy(xs, ys)
}

// WeightBits returns the total number of weight bits in the model — the
// fault-injection surface.
func (q *Quantized) WeightBits() int64 {
	var n int64
	for _, codes := range q.codes {
		n += int64(len(codes)) * int64(q.Bits)
	}
	return n
}

// FlipBit flips bit b (0 = LSB) of weight code i in tensor t, in two's
// complement within the configured width.
func (q *Quantized) FlipBit(t, i, b int) {
	if b < 0 || b >= q.Bits {
		panic("nn: bit index out of range")
	}
	mask := int32(1) << uint(b)
	// Work in the bits-wide two's complement domain.
	width := uint(q.Bits)
	v := q.codes[t][i] & (1<<width - 1) // truncate to width
	v ^= mask
	// Sign-extend back.
	if v&(1<<(width-1)) != 0 {
		v |= ^int32(0) << width
	}
	q.codes[t][i] = v
}
