package nn

import (
	"math"
	"testing"

	"hdface/internal/hv"
)

// xorProblem builds a 2D XOR-like dataset the linear model cannot solve but
// a two-hidden-layer MLP must.
func xorProblem(n int, seed uint64) (xs [][]float64, ys []int) {
	r := hv.NewRNG(seed)
	for i := 0; i < n; i++ {
		a := r.Float64()*2 - 1
		b := r.Float64()*2 - 1
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		xs = append(xs, []float64{a, b})
		ys = append(ys, y)
	}
	return
}

// blobs builds k linearly separable Gaussian blobs in dim dimensions.
func blobs(dim, k, perClass int, seed uint64) (xs [][]float64, ys []int) {
	r := hv.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = r.NormFloat64() * 3
		}
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perClass; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = centers[c][j] + r.NormFloat64()*0.5
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{In: 0, H1: 4, H2: 4, Out: 2}); err == nil {
		t.Fatal("accepted In=0")
	}
	if _, err := New(Config{In: 2, H1: 4, H2: 4, Out: 1}); err == nil {
		t.Fatal("accepted Out=1")
	}
	m, err := New(Config{In: 2, H1: 4, H2: 4, Out: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.LR == 0 || m.Cfg.Epochs == 0 || m.Cfg.Batch == 0 {
		t.Fatal("defaults not filled")
	}
}

func TestTrainRejectsBadData(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2})
	if _, err := m.Train(nil, nil); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := m.Train([][]float64{{1, 2, 3}}, []int{0}); err == nil {
		t.Fatal("accepted wrong feature length")
	}
}

func TestPredictPanicsOnWrongLength(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestLearnsBlobs(t *testing.T) {
	xs, ys := blobs(8, 3, 40, 1)
	m, _ := New(Config{In: 8, H1: 16, H2: 16, Out: 3, Epochs: 25, Seed: 2})
	losses, err := m.Train(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := m.Accuracy(xs, ys); acc < 0.95 {
		t.Fatalf("blob accuracy %v", acc)
	}
	tx, ty := blobs(8, 3, 10, 1) // same centers
	if acc := m.Accuracy(tx, ty); acc < 0.9 {
		t.Fatalf("held-out accuracy %v", acc)
	}
}

func TestLearnsXOR(t *testing.T) {
	xs, ys := xorProblem(400, 3)
	m, _ := New(Config{In: 2, H1: 16, H2: 16, Out: 2, Epochs: 120, LR: 0.1, Seed: 4})
	if _, err := m.Train(xs, ys); err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xs, ys); acc < 0.9 {
		t.Fatalf("XOR accuracy %v — nonlinearity broken", acc)
	}
}

func TestProbsSumToOne(t *testing.T) {
	m, _ := New(Config{In: 4, H1: 8, H2: 8, Out: 3})
	p := m.Probs([]float64{0.5, -0.5, 1, 0})
	var s float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("prob %v out of range", v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("probs sum to %v", s)
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs, ys := blobs(4, 2, 20, 5)
	a, _ := New(Config{In: 4, H1: 8, H2: 8, Out: 2, Epochs: 5, Seed: 9})
	b, _ := New(Config{In: 4, H1: 8, H2: 8, Out: 2, Epochs: 5, Seed: 9})
	la, _ := a.Train(xs, ys)
	lb, _ := b.Train(xs, ys)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestWeightsCount(t *testing.T) {
	m, _ := New(Config{In: 10, H1: 20, H2: 30, Out: 5})
	want := 10*20 + 20 + 20*30 + 30 + 30*5 + 5
	if got := m.Weights(); got != want {
		t.Fatalf("weights %d, want %d", got, want)
	}
}

func TestStatsCount(t *testing.T) {
	xs, ys := blobs(4, 2, 10, 6)
	m, _ := New(Config{In: 4, H1: 8, H2: 8, Out: 2, Epochs: 2})
	if _, err := m.Train(xs, ys); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ForwardMACs == 0 || m.Stats.BackwardMACs == 0 || m.Stats.Updates == 0 {
		t.Fatalf("stats empty: %+v", m.Stats)
	}
}

func TestQuantizeRejectsOddBits(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2})
	if _, err := Quantize(m, 7); err == nil {
		t.Fatal("accepted 7-bit quantisation")
	}
}

func TestQuantizeAccuracyOrdering(t *testing.T) {
	// Higher precision keeps accuracy closer to float; 4-bit loses the
	// most — the Table 2 precision/accuracy tradeoff.
	xs, ys := blobs(16, 4, 40, 7)
	m, _ := New(Config{In: 16, H1: 32, H2: 32, Out: 4, Epochs: 25, Seed: 8})
	if _, err := m.Train(xs, ys); err != nil {
		t.Fatal(err)
	}
	accF := m.Accuracy(xs, ys)
	q16, err := Quantize(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	q4, err := Quantize(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	acc16 := q16.Accuracy(xs, ys)
	acc4 := q4.Accuracy(xs, ys)
	if math.Abs(acc16-accF) > 0.02 {
		t.Fatalf("16-bit accuracy %v far from float %v", acc16, accF)
	}
	if acc4 > acc16+0.01 {
		t.Fatalf("4-bit accuracy %v above 16-bit %v", acc4, acc16)
	}
}

func TestQuantizedRoundTripValues(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2, Seed: 3})
	q, err := Quantize(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Dequantised weights must be close to the originals.
	orig := m.Layers()
	quant := q.mlp.Layers()
	for t1 := range orig {
		for i := range orig[t1] {
			if d := math.Abs(orig[t1][i] - quant[t1][i]); d > 1e-3 {
				t.Fatalf("tensor %d weight %d drifted by %v", t1, i, d)
			}
		}
	}
}

func TestFlipBitChangesWeightAndSyncs(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2, Seed: 3})
	q, err := Quantize(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := q.codes[0][0]
	q.FlipBit(0, 0, 7) // flip sign-adjacent high bit
	if q.codes[0][0] == before {
		t.Fatal("FlipBit did not change the code")
	}
	q.FlipBit(0, 0, 7)
	if q.codes[0][0] != before {
		t.Fatal("double flip did not restore the code")
	}
	// Width bounds.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range bit")
		}
	}()
	q.FlipBit(0, 0, 8)
}

func TestFlipBitSignExtension(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2, Seed: 3})
	q, _ := Quantize(m, 4)
	q.codes[0][0] = 3
	q.FlipBit(0, 0, 3) // set the sign bit: 0011 -> 1011 = -5 in 4-bit
	if q.codes[0][0] != -5 {
		t.Fatalf("sign extension wrong: %d", q.codes[0][0])
	}
}

func TestWeightBits(t *testing.T) {
	m, _ := New(Config{In: 2, H1: 4, H2: 4, Out: 2})
	q, _ := Quantize(m, 8)
	if got, want := q.WeightBits(), int64(m.Weights()*8); got != want {
		t.Fatalf("WeightBits %d, want %d", got, want)
	}
}

func BenchmarkForward(b *testing.B) {
	m, _ := New(Config{In: 324, H1: 256, H2: 256, Out: 7})
	x := make([]float64, 324)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	xs, ys := blobs(64, 4, 30, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := New(Config{In: 64, H1: 64, H2: 64, Out: 4, Epochs: 1})
		if _, err := m.Train(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
