// Package nn implements the paper's DNN baseline: a four-layer multilayer
// perceptron (input, two hidden layers, output) over HOG features, trained
// with minibatch SGD + momentum on a softmax cross-entropy loss. Weight
// quantisation to 16/8/4 bits supports the robustness study (Table 2) and
// the hardware model's precision-dependent cost accounting (Figure 7).
package nn

import (
	"errors"
	"fmt"
	"math"

	"hdface/internal/hv"
)

// Config describes the network geometry and training hyperparameters.
type Config struct {
	In, H1, H2, Out int
	LR              float64 // learning rate (default 0.05)
	Momentum        float64 // (default 0.9)
	Batch           int     // minibatch size (default 16)
	Epochs          int     // (default 30)
	Seed            uint64
}

func (c Config) withDefaults() Config {
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	return c
}

// Stats counts multiply-accumulate work for the hardware model.
type Stats struct {
	ForwardMACs  int64
	BackwardMACs int64
	Updates      int64
}

// layer is one dense layer with momentum buffers.
type layer struct {
	in, out int
	w       []float64 // out x in
	b       []float64
	vw, vb  []float64
}

func newLayer(in, out int, r *hv.RNG) *layer {
	l := &layer{in: in, out: out,
		w: make([]float64, in*out), b: make([]float64, out),
		vw: make([]float64, in*out), vb: make([]float64, out)}
	// He initialisation for ReLU nets.
	s := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = r.NormFloat64() * s
	}
	return l
}

// MLP is the four-layer baseline network.
type MLP struct {
	Cfg        Config
	l1, l2, l3 *layer
	rng        *hv.RNG
	Stats      Stats
}

// New builds an MLP with the given configuration.
func New(cfg Config) (*MLP, error) {
	cfg = cfg.withDefaults()
	if cfg.In <= 0 || cfg.H1 <= 0 || cfg.H2 <= 0 || cfg.Out < 2 {
		return nil, fmt.Errorf("nn: invalid geometry %d-%d-%d-%d", cfg.In, cfg.H1, cfg.H2, cfg.Out)
	}
	r := hv.NewRNG(cfg.Seed ^ 0x6e6e)
	return &MLP{Cfg: cfg,
		l1:  newLayer(cfg.In, cfg.H1, r),
		l2:  newLayer(cfg.H1, cfg.H2, r),
		l3:  newLayer(cfg.H2, cfg.Out, r),
		rng: r}, nil
}

// forward runs one sample, returning all activations (post-ReLU for hidden
// layers, logits for the output layer).
func (m *MLP) forward(x []float64) (a1, a2, logits []float64) {
	a1 = m.dense(m.l1, x, true)
	a2 = m.dense(m.l2, a1, true)
	logits = m.dense(m.l3, a2, false)
	return
}

func (m *MLP) dense(l *layer, x []float64, relu bool) []float64 {
	out := make([]float64, l.out)
	for o := 0; o < l.out; o++ {
		s := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, xv := range x {
			s += row[i] * xv
		}
		if relu && s < 0 {
			s = 0
		}
		out[o] = s
	}
	m.Stats.ForwardMACs += int64(l.in) * int64(l.out)
	return out
}

// softmax converts logits to probabilities in place and returns them.
func softmax(z []float64) []float64 {
	maxz := z[0]
	for _, v := range z {
		if v > maxz {
			maxz = v
		}
	}
	var sum float64
	for i, v := range z {
		z[i] = math.Exp(v - maxz)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
	return z
}

// Predict returns the argmax class for features x.
func (m *MLP) Predict(x []float64) int {
	if len(x) != m.Cfg.In {
		panic(fmt.Sprintf("nn: got %d features, want %d", len(x), m.Cfg.In))
	}
	_, _, logits := m.forward(x)
	best := 0
	for c, v := range logits {
		if v > logits[best] {
			best = c
		}
	}
	return best
}

// Probs returns the softmax class distribution for x.
func (m *MLP) Probs(x []float64) []float64 {
	_, _, logits := m.forward(x)
	return softmax(logits)
}

// Train runs SGD over the dataset and returns the final average training
// loss per epoch.
func (m *MLP) Train(xs [][]float64, ys []int) ([]float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("nn: features and labels must be non-empty and aligned")
	}
	for _, x := range xs {
		if len(x) != m.Cfg.In {
			return nil, fmt.Errorf("nn: feature length %d, want %d", len(x), m.Cfg.In)
		}
	}
	losses := make([]float64, 0, m.Cfg.Epochs)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < m.Cfg.Epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += m.Cfg.Batch {
			end := start + m.Cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			epochLoss += m.step(xs, ys, idx[start:end])
		}
		losses = append(losses, epochLoss/float64(len(xs)))
	}
	return losses, nil
}

// step accumulates gradients over one minibatch and applies a momentum
// update. Returns the summed loss.
func (m *MLP) step(xs [][]float64, ys []int, batch []int) float64 {
	g1w := make([]float64, len(m.l1.w))
	g1b := make([]float64, len(m.l1.b))
	g2w := make([]float64, len(m.l2.w))
	g2b := make([]float64, len(m.l2.b))
	g3w := make([]float64, len(m.l3.w))
	g3b := make([]float64, len(m.l3.b))
	var loss float64
	for _, i := range batch {
		x, y := xs[i], ys[i]
		a1, a2, logits := m.forward(x)
		p := softmax(logits)
		loss += -math.Log(math.Max(p[y], 1e-12))
		// dL/dlogits = p - onehot(y)
		d3 := p // reuse
		d3[y] -= 1
		// layer 3 grads + backprop into a2
		d2 := make([]float64, m.Cfg.H2)
		for o := 0; o < m.Cfg.Out; o++ {
			row := m.l3.w[o*m.Cfg.H2 : (o+1)*m.Cfg.H2]
			g := d3[o]
			g3b[o] += g
			for j, a := range a2 {
				g3w[o*m.Cfg.H2+j] += g * a
				d2[j] += g * row[j]
			}
		}
		m.Stats.BackwardMACs += 2 * int64(m.Cfg.Out) * int64(m.Cfg.H2)
		for j := range d2 {
			if a2[j] <= 0 {
				d2[j] = 0
			}
		}
		d1 := make([]float64, m.Cfg.H1)
		for o := 0; o < m.Cfg.H2; o++ {
			row := m.l2.w[o*m.Cfg.H1 : (o+1)*m.Cfg.H1]
			g := d2[o]
			if g == 0 {
				continue
			}
			g2b[o] += g
			for j, a := range a1 {
				g2w[o*m.Cfg.H1+j] += g * a
				d1[j] += g * row[j]
			}
		}
		m.Stats.BackwardMACs += 2 * int64(m.Cfg.H2) * int64(m.Cfg.H1)
		for j := range d1 {
			if a1[j] <= 0 {
				d1[j] = 0
			}
		}
		for o := 0; o < m.Cfg.H1; o++ {
			g := d1[o]
			if g == 0 {
				continue
			}
			g1b[o] += g
			for j, xv := range x {
				g1w[o*m.Cfg.In+j] += g * xv
			}
		}
		m.Stats.BackwardMACs += int64(m.Cfg.H1) * int64(m.Cfg.In)
	}
	scale := 1 / float64(len(batch))
	m.update(m.l1, g1w, g1b, scale)
	m.update(m.l2, g2w, g2b, scale)
	m.update(m.l3, g3w, g3b, scale)
	return loss
}

func (m *MLP) update(l *layer, gw, gb []float64, scale float64) {
	lr, mom := m.Cfg.LR, m.Cfg.Momentum
	for i := range l.w {
		l.vw[i] = mom*l.vw[i] - lr*gw[i]*scale
		l.w[i] += l.vw[i]
	}
	for i := range l.b {
		l.vb[i] = mom*l.vb[i] - lr*gb[i]*scale
		l.b[i] += l.vb[i]
	}
	m.Stats.Updates += int64(len(l.w) + len(l.b))
}

// Accuracy returns the fraction of correctly classified samples.
func (m *MLP) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// Weights returns the total parameter count.
func (m *MLP) Weights() int {
	return len(m.l1.w) + len(m.l1.b) + len(m.l2.w) + len(m.l2.b) + len(m.l3.w) + len(m.l3.b)
}

// Layers exposes the three weight matrices (with biases appended) for
// quantisation and fault injection. The returned slices alias the model.
func (m *MLP) Layers() [][]float64 {
	return [][]float64{m.l1.w, m.l1.b, m.l2.w, m.l2.b, m.l3.w, m.l3.b}
}
