package hwsim

import (
	"strings"
	"testing"

	"hdface/internal/hog"
	"hdface/internal/nn"
	"hdface/internal/stoch"
)

func TestTraceAddScaleTotal(t *testing.T) {
	a := Trace{OpWord64: 100, OpPop64: 50}
	b := Trace{OpWord64: 10, OpMAC16: 5}
	a.Add(b)
	if a[OpWord64] != 110 || a[OpMAC16] != 5 {
		t.Fatalf("Add wrong: %v", a)
	}
	s := a.Scale(2)
	if s[OpWord64] != 220 || a[OpWord64] != 110 {
		t.Fatal("Scale wrong or mutated source")
	}
	if a.Total() != 110+50+5 {
		t.Fatalf("Total %d", a.Total())
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{OpWord64: 2, OpMAC16: 3}
	s := tr.String()
	if !strings.Contains(s, "word64:2") || !strings.Contains(s, "mac16:3") {
		t.Fatalf("String() = %q", s)
	}
}

func TestOpClassString(t *testing.T) {
	if OpWord64.String() != "word64" || OpFloatAtan.String() != "fatan" {
		t.Fatal("op names wrong")
	}
	if OpClass(99).String() != "unknown" {
		t.Fatal("out-of-range op name")
	}
}

func TestFromStoch(t *testing.T) {
	tr := FromStoch(stoch.Stats{XorWords: 10, SelectWords: 5, MaskWords: 7, PopWords: 3, PermWords: 2})
	if tr[OpWord64] != 20 || tr[OpRand64] != 7 || tr[OpPop64] != 3 || tr[OpPerm64] != 2 {
		t.Fatalf("FromStoch wrong: %v", tr)
	}
}

func TestFromHOG(t *testing.T) {
	tr := FromHOG(hog.Stats{Adds: 4, Muls: 3, Sqrts: 2, Atans: 1})
	if tr[OpFloatAdd] != 4 || tr[OpFloatSqrt] != 2 || tr[OpFloatAtan] != 1 {
		t.Fatalf("FromHOG wrong: %v", tr)
	}
}

func TestFromNNPrecisions(t *testing.T) {
	s := nn.Stats{ForwardMACs: 100, BackwardMACs: 50, Updates: 10}
	for bits, op := range map[int]OpClass{32: OpMAC32, 16: OpMAC16, 8: OpMAC8, 4: OpMAC4} {
		tr := FromNN(s, bits)
		if tr[op] != 150 {
			t.Fatalf("bits=%d: MACs %d", bits, tr[op])
		}
		if tr[OpFloatAdd] != 20 {
			t.Fatalf("bits=%d: updates %d", bits, tr[OpFloatAdd])
		}
	}
}

func TestHDCTrainTrace(t *testing.T) {
	tr := HDCTrainTrace(10, 4, 4096)
	if tr[OpWord64] != 10*64 || tr[OpPop64] != 10*64 || tr[OpIntAcc] != 4*4096 {
		t.Fatalf("HDCTrainTrace wrong: %v", tr)
	}
}

func TestMACs(t *testing.T) {
	tr := MACs(1000, 16)
	if tr[OpMAC16] != 1000 || tr[OpFloatAdd] != 0 {
		t.Fatalf("MACs wrong: %v", tr)
	}
}

func TestRunBasics(t *testing.T) {
	cpu := CortexA53()
	tr := Trace{OpWord64: 1 << 20}
	r := cpu.Run(tr)
	if r.Cycles <= 0 || r.Seconds <= 0 || r.Joules() <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	// 2 word ops per cycle at 1.4 GHz.
	wantCycles := float64(1<<20) / 2
	if r.Cycles != wantCycles {
		t.Fatalf("cycles %v, want %v", r.Cycles, wantCycles)
	}
	if r.Seconds != wantCycles/1.4e9 {
		t.Fatalf("seconds %v", r.Seconds)
	}
	if r.StaticJ <= 0 || r.DynamicJ <= 0 {
		t.Fatal("energy components missing")
	}
	if !strings.Contains(r.String(), "A53") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestUnmappedOpPenalised(t *testing.T) {
	p := Platform{Name: "bare", FreqHz: 1e9}
	r := p.Run(Trace{OpFloatAtan: 100})
	if r.Cycles != 1000 { // 0.1 ops/cycle fallback
		t.Fatalf("fallback cycles %v", r.Cycles)
	}
}

func TestBitwiseWorkPrefersFPGA(t *testing.T) {
	// The structural claim behind Figure 7: a bitwise-dominated trace
	// speeds up far more on the FPGA than a MAC-dominated one.
	cpu, fpga := CortexA53(), Kintex7()
	hdc := Trace{OpWord64: 1 << 24, OpPop64: 1 << 22, OpRand64: 1 << 22}
	dnn := Trace{OpMAC32: 1 << 24, OpFloatAdd: 1 << 20}
	hdcSpeedup := Speedup(fpga.Run(hdc), cpu.Run(hdc))
	dnnSpeedup := Speedup(fpga.Run(dnn), cpu.Run(dnn))
	if hdcSpeedup <= dnnSpeedup {
		t.Fatalf("FPGA speedup for HDC (%v) not above DNN (%v)", hdcSpeedup, dnnSpeedup)
	}
}

func TestTranscendentalsHurtFPGALess(t *testing.T) {
	// Atan-heavy classical HOG is painful everywhere but must not be
	// infinitely penalised: both platforms must return finite work.
	tr := FromHOG(hog.Stats{Adds: 1000, Muls: 1000, Sqrts: 100, Atans: 100})
	for _, p := range []Platform{CortexA53(), Kintex7()} {
		r := p.Run(tr)
		if r.Seconds <= 0 || r.Joules() <= 0 {
			t.Fatalf("%s: degenerate report", p.Name)
		}
	}
}

func TestSpeedupEnergyGain(t *testing.T) {
	a := Report{Seconds: 1, DynamicJ: 1}
	b := Report{Seconds: 4, DynamicJ: 2, StaticJ: 2}
	if Speedup(a, b) != 4 {
		t.Fatal("Speedup wrong")
	}
	if EnergyGain(a, b) != 4 {
		t.Fatal("EnergyGain wrong")
	}
	if Speedup(Report{}, b) != 0 || EnergyGain(Report{}, b) != 0 {
		t.Fatal("zero guards wrong")
	}
}

func TestLowerPrecisionCheaper(t *testing.T) {
	fpga := Kintex7()
	s := nn.Stats{ForwardMACs: 1 << 24}
	t16 := fpga.Run(FromNN(s, 16))
	t4 := fpga.Run(FromNN(s, 4))
	if t4.Seconds >= t16.Seconds {
		t.Fatal("4-bit not faster than 16-bit on FPGA")
	}
	if t4.DynamicJ >= t16.DynamicJ {
		t.Fatal("4-bit not more energy-efficient")
	}
}
