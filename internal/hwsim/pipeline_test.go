package hwsim

import (
	"math"
	"strings"
	"testing"
)

func TestPipeSerialSumsVsParallelMaxes(t *testing.T) {
	p := Platform{Name: "test", FreqHz: 1e9}
	p.Throughput[OpWord64] = 2
	p.Throughput[OpPop64] = 1
	p.EnergyPJ[OpWord64] = 1
	p.EnergyPJ[OpPop64] = 1
	phases := []Phase{{Name: "x", Trace: Trace{OpWord64: 200, OpPop64: 100}}}

	serial := PipeSim{P: p}.Run(phases)
	parallel := PipeSim{P: p, Parallel: true}.Run(phases)
	// Serial: 100 + 100 cycles; parallel: max(100, 100).
	if serial.Cycles != 200 {
		t.Fatalf("serial cycles %v, want 200", serial.Cycles)
	}
	if parallel.Cycles != 100 {
		t.Fatalf("parallel cycles %v, want 100", parallel.Cycles)
	}
	// Same dynamic energy either way.
	if serial.DynamicJ != parallel.DynamicJ {
		t.Fatal("dynamic energy should not depend on scheduling")
	}
}

func TestPipeFillLatency(t *testing.T) {
	p := Platform{Name: "test", FreqHz: 1e9}
	p.Throughput[OpWord64] = 1
	sim := PipeSim{P: p, FillLatency: 50}
	r := sim.Run([]Phase{{Name: "a", Trace: Trace{OpWord64: 10}}, {Name: "b", Trace: Trace{OpWord64: 10}}})
	if r.Cycles != 10+50+10+50 {
		t.Fatalf("cycles %v, want 120", r.Cycles)
	}
}

func TestPipeBottleneckIdentified(t *testing.T) {
	p := Platform{Name: "test", FreqHz: 1e9}
	p.Throughput[OpWord64] = 100
	p.Throughput[OpRand64] = 1
	sim := PipeSim{P: p, Parallel: true}
	r := sim.Run([]Phase{{Name: "mask", Trace: Trace{OpWord64: 1000, OpRand64: 500}}})
	if r.Phases[0].Bottleneck != OpRand64 {
		t.Fatalf("bottleneck %v, want rand64", r.Phases[0].Bottleneck)
	}
	// Bottleneck unit runs at ~100% utilisation (minus fill).
	if u := r.Phases[0].Utilization[OpRand64]; u < 0.9 {
		t.Fatalf("bottleneck utilisation %v", u)
	}
	if u := r.Phases[0].Utilization[OpWord64]; u > 0.1 {
		t.Fatalf("non-bottleneck utilisation %v too high", u)
	}
}

func TestPipeUnmappedOpPenalised(t *testing.T) {
	p := Platform{Name: "bare", FreqHz: 1e9}
	r := PipeSim{P: p}.Run([]Phase{{Name: "x", Trace: Trace{OpFloatAtan: 10}}})
	if r.Cycles != 100 {
		t.Fatalf("fallback cycles %v, want 100", r.Cycles)
	}
}

func TestPipeEnergyAccounting(t *testing.T) {
	p := Platform{Name: "test", FreqHz: 1e9, StaticWatts: 1}
	p.Throughput[OpWord64] = 1
	p.EnergyPJ[OpWord64] = 1000 // 1 nJ
	r := PipeSim{P: p}.Run([]Phase{{Name: "x", Trace: Trace{OpWord64: 1e6}}})
	if math.Abs(r.DynamicJ-1e-3) > 1e-12 {
		t.Fatalf("dynamic %v, want 1e-3", r.DynamicJ)
	}
	if r.StaticJ <= 0 || r.Joules() <= r.DynamicJ {
		t.Fatal("static energy missing")
	}
}

func TestPipeReportString(t *testing.T) {
	sim := NewFPGASim(Kintex7())
	r := sim.Run([]Phase{
		{Name: "feature", Trace: Trace{OpWord64: 1 << 16, OpRand64: 1 << 14}},
		{Name: "search", Trace: Trace{OpPop64: 1 << 12}},
	})
	s := r.String()
	for _, want := range []string{"feature", "search", "bottleneck"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestPipeSpeedup(t *testing.T) {
	cpu := NewCPUSim(CortexA53())
	fpga := NewFPGASim(Kintex7())
	phases := []Phase{{Name: "x", Trace: Trace{OpWord64: 1 << 24}}}
	rc, rf := cpu.Run(phases), fpga.Run(phases)
	if sp := rf.Speedup(rc); sp <= 1 {
		t.Fatalf("FPGA not faster on bitwise work: %v", sp)
	}
	if (PipeReport{}).Speedup(rc) != 0 {
		t.Fatal("zero guard broken")
	}
}

func TestPipeParallelNeverSlowerThanSerial(t *testing.T) {
	fpga := Kintex7()
	phases := []Phase{{Name: "x", Trace: Trace{
		OpWord64: 1 << 20, OpPop64: 1 << 18, OpRand64: 1 << 16, OpMAC16: 1 << 14}}}
	serial := PipeSim{P: fpga, FillLatency: 64}.Run(phases)
	parallel := PipeSim{P: fpga, Parallel: true, FillLatency: 64}.Run(phases)
	if parallel.Cycles > serial.Cycles {
		t.Fatalf("parallel %v slower than serial %v", parallel.Cycles, serial.Cycles)
	}
}
