// Package hwsim models the two embedded platforms of the paper's
// evaluation — an ARM Cortex A53-class CPU and a Kintex-7-class FPGA — as
// analytic cycle/energy engines driven by exact operation counts collected
// from the algorithm implementations. The real study measured wall time and
// a power meter; the shape of its results (who wins, and why the FPGA
// amplifies HDC's advantage) is determined by the operation mix, which this
// model prices explicitly:
//
//   - HDC work is 64-bit word logic, popcounts and RNG words. On the CPU
//     these run a couple per cycle; on the FPGA they map onto the sea of
//     LUTs, thousands of word-lanes wide.
//   - DNN and classical-HOG work is multiply-accumulate and transcendental
//     float math. The CPU runs a few MACs per cycle through NEON; the FPGA
//     must route them through its limited DSP48 slices.
//
// Throughput and energy constants are calibrated against public A53 and
// Kintex-7 figures (see DESIGN.md) and are deliberately conservative for
// HDC on the CPU.
package hwsim

import (
	"fmt"
	"sort"
	"strings"

	"hdface/internal/hog"
	"hdface/internal/nn"
	"hdface/internal/stoch"
)

// OpClass enumerates the priced operation classes.
type OpClass int

// Operation classes. Word ops process one 64-bit word.
const (
	OpWord64    OpClass = iota // XOR/AND/OR/select word logic
	OpPop64                    // 64-bit popcount
	OpRand64                   // one 64-bit PRNG word
	OpPerm64                   // permutation/rotation word
	OpIntAcc                   // one 32-bit integer accumulate
	OpMAC32                    // float32 multiply-accumulate
	OpMAC16                    // 16-bit fixed MAC
	OpMAC8                     // 8-bit fixed MAC
	OpMAC4                     // 4-bit fixed MAC
	OpFloatAdd                 // float add/sub/compare
	OpFloatMul                 // float multiply/divide
	OpFloatSqrt                // float square root
	OpFloatAtan                // float atan2 (or equivalent CORDIC)
	numOpClasses
)

var opNames = [...]string{
	"word64", "pop64", "rand64", "perm64", "intacc",
	"mac32", "mac16", "mac8", "mac4",
	"fadd", "fmul", "fsqrt", "fatan",
}

// String names the op class.
func (o OpClass) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return "unknown"
	}
	return opNames[o]
}

// Trace is an operation-count histogram describing a workload phase.
type Trace map[OpClass]int64

// Add accumulates another trace into t.
func (t Trace) Add(o Trace) {
	for k, v := range o {
		t[k] += v
	}
}

// Scale returns a copy of t with every count multiplied by f.
func (t Trace) Scale(f float64) Trace {
	out := Trace{}
	for k, v := range t {
		out[k] = int64(float64(v) * f)
	}
	return out
}

// Total returns the total op count.
func (t Trace) Total() int64 {
	var n int64
	for _, v := range t {
		n += v
	}
	return n
}

// String renders the trace sorted by op class.
func (t Trace) String() string {
	keys := make([]int, 0, len(t))
	for k := range t {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%d", OpClass(k), t[OpClass(k)])
	}
	return b.String()
}

// FromStoch converts stochastic-arithmetic counters into a trace. A select
// is two masked ANDs and an OR (~2 word ops beyond the mask draw).
func FromStoch(s stoch.Stats) Trace {
	return Trace{
		OpWord64: s.XorWords + 2*s.SelectWords,
		OpPop64:  s.PopWords,
		OpRand64: s.MaskWords,
		OpPerm64: s.PermWords,
	}
}

// FromHOG converts classical-HOG float counters into a trace.
func FromHOG(s hog.Stats) Trace {
	return Trace{
		OpFloatAdd:  s.Adds,
		OpFloatMul:  s.Muls,
		OpFloatSqrt: s.Sqrts,
		OpFloatAtan: s.Atans,
	}
}

// FromNN prices DNN MAC work at the given weight precision (32 = float).
func FromNN(s nn.Stats, bits int) Trace {
	mac := OpMAC32
	switch bits {
	case 16:
		mac = OpMAC16
	case 8:
		mac = OpMAC8
	case 4:
		mac = OpMAC4
	}
	return Trace{
		mac:        s.ForwardMACs + s.BackwardMACs,
		OpFloatAdd: 2 * s.Updates, // momentum + weight add
	}
}

// HDCTrainTrace prices hyperdimensional classifier work: every similarity
// is D/64 popcount+word ops against each class, every class update D
// integer accumulates.
func HDCTrainTrace(similarities, updates int64, d int) Trace {
	words := int64((d + 63) / 64)
	return Trace{
		OpWord64: similarities * words,
		OpPop64:  similarities * words,
		OpIntAcc: updates * int64(d),
	}
}

// MACs builds a pure MAC trace (projection encoders, SVM).
func MACs(n int64, bits int) Trace {
	t := FromNN(nn.Stats{ForwardMACs: n}, bits)
	delete(t, OpFloatAdd)
	return t
}

// Platform prices traces. Throughput is ops per cycle; energy is picojoules
// per op; StaticWatts covers leakage and clock tree.
type Platform struct {
	Name        string
	FreqHz      float64
	Throughput  [numOpClasses]float64
	EnergyPJ    [numOpClasses]float64
	StaticWatts float64
}

// CortexA53 models the quad-issue in-order embedded core of the paper's
// Raspberry Pi 3B+ testbed (one core, NEON).
func CortexA53() Platform {
	p := Platform{Name: "ARM Cortex A53", FreqHz: 1.4e9, StaticWatts: 0.35}
	set := func(o OpClass, thr, pj float64) {
		p.Throughput[o] = thr
		p.EnergyPJ[o] = pj
	}
	// HDC streams D-wide vectors through memory, so its word ops carry
	// DRAM/L2 energy (~80 pJ per 64-bit word on LPDDR2-class systems),
	// whereas the DNN's GEMM-style MACs stay cache-resident.
	set(OpWord64, 2, 80)     // 2 ALU pipes, memory-bound energy
	set(OpPop64, 1, 80)      // NEON cnt+horizontal add
	set(OpRand64, 0.25, 100) // xoshiro: ~4 cycles/word
	set(OpPerm64, 1.5, 80)   // shifts + or
	set(OpIntAcc, 4, 60)     // 128-bit NEON int add
	// Inference/training GEMV on megabyte-scale weight matrices is DRAM
	// bandwidth bound on the A53 (each f32 MAC streams 4 weight bytes at
	// a few GB/s), so sustained MAC rates sit far below NEON peak.
	set(OpMAC32, 1, 80)
	set(OpMAC16, 2, 40)
	set(OpMAC8, 4, 30) // no int8 dot product on A53
	set(OpMAC4, 4, 30)
	set(OpFloatAdd, 2, 40)
	set(OpFloatMul, 2, 45)
	set(OpFloatSqrt, 1.0/8, 300)
	set(OpFloatAtan, 1.0/40, 1500)
	return p
}

// Kintex7 models the KC705's XC7K325T: ~200k usable LUTs, 840 DSP48 slices,
// 200 MHz system clock.
func Kintex7() Platform {
	p := Platform{Name: "Kintex-7 FPGA", FreqHz: 2e8, StaticWatts: 0.5}
	set := func(o OpClass, thr, pj float64) {
		p.Throughput[o] = thr
		p.EnergyPJ[o] = pj
	}
	// A spatial dataflow implementation lays each D-bit hypervector out
	// as parallel wires: one 4096-bit XOR costs ~4k LUTs, so a 200k-LUT
	// part pipelines tens of vector operators, sustaining thousands of
	// 64-bit words per cycle. This LUT-sea mapping is exactly the
	// advantage the paper attributes to HDC on FPGAs.
	set(OpWord64, 2048, 3) // spatial vector operators
	set(OpPop64, 1024, 4)  // LUT popcount trees
	set(OpRand64, 1024, 5) // per-bit LFSR farms feed the mask generators
	set(OpPerm64, 2048, 2) // barrel-shift routing
	set(OpIntAcc, 1024, 4) // carry-chain adders
	set(OpMAC32, 120, 80)  // ~4 DSP + logic each, routing-limited
	set(OpMAC16, 840, 20)  // one DSP48 each
	set(OpMAC8, 1680, 12)  // two per DSP
	set(OpMAC4, 3360, 8)
	set(OpFloatAdd, 200, 30)
	set(OpFloatMul, 210, 35)
	set(OpFloatSqrt, 20, 150)
	set(OpFloatAtan, 10, 400)
	return p
}

// Report is the priced execution of one trace on one platform.
type Report struct {
	Platform string
	Cycles   float64
	Seconds  float64
	DynamicJ float64
	StaticJ  float64
}

// Joules returns total energy.
func (r Report) Joules() float64 { return r.DynamicJ + r.StaticJ }

// String formats the report.
func (r Report) String() string {
	return fmt.Sprintf("%s: %.3g cycles, %.3g s, %.3g J", r.Platform, r.Cycles, r.Seconds, r.Joules())
}

// Run prices a trace on the platform.
func (p Platform) Run(t Trace) Report {
	var cycles, dyn float64
	for op, n := range t {
		if n == 0 {
			continue
		}
		thr := p.Throughput[op]
		if thr == 0 {
			thr = 0.1 // unmapped op: heavily penalised microcode path
		}
		cycles += float64(n) / thr
		dyn += float64(n) * p.EnergyPJ[op] * 1e-12
	}
	secs := cycles / p.FreqHz
	return Report{
		Platform: p.Name,
		Cycles:   cycles,
		Seconds:  secs,
		DynamicJ: dyn,
		StaticJ:  p.StaticWatts * secs,
	}
}

// Speedup returns how much faster a is than b (b.Seconds / a.Seconds).
func Speedup(a, b Report) float64 {
	if a.Seconds == 0 {
		return 0
	}
	return b.Seconds / a.Seconds
}

// EnergyGain returns how much less energy a uses than b.
func EnergyGain(a, b Report) float64 {
	if a.Joules() == 0 {
		return 0
	}
	return b.Joules() / a.Joules()
}
