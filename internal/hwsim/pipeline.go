package hwsim

import (
	"fmt"
	"sort"
	"strings"
)

// PipeSim refines the flat Platform.Run cost model into a phase-level
// pipeline simulation — the "cycle-accurate simulator" role of the paper's
// methodology. A workload is a sequence of dependent phases (e.g. encode ->
// feature -> similarity); within one phase the platform's functional units
// run concurrently:
//
//   - On a spatial datapath (FPGA), unit classes operate in parallel, so a
//     phase takes as long as its busiest unit class plus the pipeline fill
//     latency. The slowest class is the bottleneck the report names.
//   - On a shared-issue CPU, all ops contend for the issue ports, so a
//     phase costs the sum of its per-class cycles (the flat model), still
//     reported with per-class shares.
type PipeSim struct {
	P Platform
	// Parallel marks a spatial datapath (unit classes overlap within a
	// phase).
	Parallel bool
	// FillLatency is the pipeline depth charged once per phase (cycles).
	FillLatency float64
}

// NewCPUSim wraps a CPU-like platform (serial issue).
func NewCPUSim(p Platform) PipeSim { return PipeSim{P: p, FillLatency: 20} }

// NewFPGASim wraps an FPGA-like platform (spatial, deep pipelines).
func NewFPGASim(p Platform) PipeSim {
	return PipeSim{P: p, Parallel: true, FillLatency: 64}
}

// Phase is one named dependency step of a workload.
type Phase struct {
	Name  string
	Trace Trace
}

// PhaseReport prices one phase.
type PhaseReport struct {
	Name        string
	Cycles      float64
	Bottleneck  OpClass
	Utilization map[OpClass]float64 // busy fraction per unit class
	DynamicJ    float64
}

// PipeReport prices a whole workload.
type PipeReport struct {
	Platform string
	Phases   []PhaseReport
	Cycles   float64
	Seconds  float64
	DynamicJ float64
	StaticJ  float64
}

// Joules returns total energy.
func (r PipeReport) Joules() float64 { return r.DynamicJ + r.StaticJ }

// Run simulates the phases in order.
func (s PipeSim) Run(phases []Phase) PipeReport {
	rep := PipeReport{Platform: s.P.Name}
	for _, ph := range phases {
		pr := PhaseReport{Name: ph.Name, Utilization: map[OpClass]float64{}}
		var busiest float64
		var sum float64
		for op, n := range ph.Trace {
			if n == 0 {
				continue
			}
			thr := s.P.Throughput[op]
			if thr == 0 {
				thr = 0.1
			}
			c := float64(n) / thr
			sum += c
			if c > busiest {
				busiest = c
				pr.Bottleneck = op
			}
			pr.Utilization[op] = c // busy cycles; normalised below
			pr.DynamicJ += float64(n) * s.P.EnergyPJ[op] * 1e-12
		}
		if s.Parallel {
			pr.Cycles = busiest + s.FillLatency
		} else {
			pr.Cycles = sum + s.FillLatency
		}
		if pr.Cycles > 0 {
			for op, busy := range pr.Utilization {
				pr.Utilization[op] = busy / pr.Cycles
			}
		}
		rep.Phases = append(rep.Phases, pr)
		rep.Cycles += pr.Cycles
		rep.DynamicJ += pr.DynamicJ
	}
	rep.Seconds = rep.Cycles / s.P.FreqHz
	rep.StaticJ = s.P.StaticWatts * rep.Seconds
	return rep
}

// String renders a per-phase bottleneck table.
func (r PipeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.3g cycles, %.3g s, %.3g J\n", r.Platform, r.Cycles, r.Seconds, r.Joules())
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "  %-12s %12.3g cycles  bottleneck %-7s", ph.Name, ph.Cycles, ph.Bottleneck)
		// Top unit utilisations, sorted.
		type kv struct {
			op OpClass
			u  float64
		}
		var us []kv
		for op, u := range ph.Utilization {
			us = append(us, kv{op, u})
		}
		sort.Slice(us, func(i, j int) bool { return us[i].u > us[j].u })
		for i, x := range us {
			if i == 3 {
				break
			}
			fmt.Fprintf(&b, "  %s:%.0f%%", x.op, x.u*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Speedup compares two pipe reports (other / this).
func (r PipeReport) Speedup(other PipeReport) float64 {
	if r.Seconds == 0 {
		return 0
	}
	return other.Seconds / r.Seconds
}
